open Nbsc_value
open Nbsc_txn
open Nbsc_core
module Obs = Nbsc_obs.Obs

type kind =
  | Foj_scenario of { r_rows : int; s_rows : int }
  | Split_scenario of { t_rows : int; assume_consistent : bool }

type workload = {
  n_clients : int;
  think_time : int;
  ops_per_txn : int;
  source_share : float;
  seed : int;
}

type costs = {
  op_cost : int;
  scan_cost : int;
  apply_cost : int;
  cc_cost : int;
  trigger_rtt : int;
}

let default_costs =
  { op_cost = 100; scan_cost = 2; apply_cost = 1; cc_cost = 50;
    trigger_rtt = 50 }

type tf_setup = {
  priority : float;
  config : Transform.config;
}

type background =
  | No_background
  | Transformation of tf_setup
  | Blocking_dump of { dump_priority : float }
  | Trigger_maintenance

type result = {
  summary : Metrics.summary;
  tf_done_at : int option;
  tf_final_phase : Transform.phase option;
  tf_progress : Transform.progress option;
  tf_busy : int;
  retries : int;
  mgr_stats : Manager.Stats.counters;
  wall_clock_final_ns : int option;
  wal_high_water : int;
  wal_truncated : int;
}

let clients_for_workload ?(think_time = 21_000) ?(ops_per_txn = 10)
    ?(costs = default_costs) pct =
  let svc = (ops_per_txn + 1) * costs.op_cost in
  let saturating = float_of_int (think_time + svc) /. float_of_int svc in
  max 1 (int_of_float (Float.round (pct /. 100. *. saturating)))

(* {1 Fixture schemas} *)

let col = Schema.column

let r_schema =
  Schema.make ~key:[ "a" ]
    [ col ~nullable:false "a" Value.TInt; col "b" Value.TText;
      col "c" Value.TInt ]

let s_schema =
  Schema.make ~key:[ "c" ]
    [ col ~nullable:false "c" Value.TInt; col "d" Value.TText ]

let t_schema =
  Schema.make ~key:[ "a" ]
    [ col ~nullable:false "a" Value.TInt; col "b" Value.TText;
      col "c" Value.TInt; col "d" Value.TText ]

let dummy_schema =
  Schema.make ~key:[ "k" ]
    [ col ~nullable:false "k" Value.TInt; col "v" Value.TText ]

let dummy_rows = 5_000

let foj_spec =
  { Spec.r_table = "R"; s_table = "S"; t_table = "T_new";
    join_r = [ "c" ]; join_s = [ "c" ]; t_join = [ "c" ];
    r_carry = [ "a"; "b" ]; s_carry = [ "d" ]; many_to_many = false }

let split_spec ~assume_consistent =
  { Spec.t_table' = "T"; r_table' = "R_new"; s_table' = "S_new";
    r_cols = [ "a"; "b"; "c" ]; s_cols = [ "c"; "d" ];
    split_key = [ "c" ]; assume_consistent }

let city_of c = "city" ^ string_of_int c

let load_batched db ~table rows =
  let rec go = function
    | [] -> ()
    | rows ->
      let batch, rest =
        let rec take n acc = function
          | [] -> (List.rev acc, [])
          | x :: xs when n > 0 -> take (n - 1) (x :: acc) xs
          | xs -> (List.rev acc, xs)
        in
        take 1000 [] rows
      in
      (match Db.load db ~table batch with
       | Ok () -> ()
       | Error e ->
         failwith (Format.asprintf "Sim: load %s: %a" table Manager.pp_error e));
      go rest
  in
  go rows

let setup_db kind =
  let db = Db.create () in
  ignore (Db.create_table db ~name:"D" dummy_schema);
  load_batched db ~table:"D"
    (List.init dummy_rows (fun i ->
         Row.make [ Value.Int i; Value.Text "pad" ]));
  (match kind with
   | Foj_scenario { r_rows; s_rows } ->
     ignore (Db.create_table db ~name:"R" r_schema);
     ignore (Db.create_table db ~name:"S" s_schema);
     load_batched db ~table:"R"
       (List.init r_rows (fun i ->
            Row.make
              [ Value.Int (i + 1); Value.Text ("b" ^ string_of_int i);
                Value.Int (if s_rows = 0 then 0 else i mod s_rows) ]));
     load_batched db ~table:"S"
       (List.init s_rows (fun i ->
            Row.make [ Value.Int i; Value.Text ("d" ^ string_of_int i) ]))
   | Split_scenario { t_rows; _ } ->
     ignore (Db.create_table db ~name:"T" t_schema);
     load_batched db ~table:"T"
       (List.init t_rows (fun i ->
            let c = i mod 997 in
            Row.make
              [ Value.Int (i + 1); Value.Text ("b" ^ string_of_int i);
                Value.Int c; Value.Text (city_of c) ])));
  db

(* {1 A tiny binary min-heap of (time, client index)} *)

module Heap = struct
  type t = {
    mutable arr : (int * int) array;
    mutable len : int;
  }

  let create () = { arr = Array.make 64 (0, 0); len = 0 }

  let swap h i j =
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- tmp

  let push h time v =
    if h.len >= Array.length h.arr then begin
      let bigger = Array.make (Array.length h.arr * 2) (0, 0) in
      Array.blit h.arr 0 bigger 0 h.len;
      h.arr <- bigger
    end;
    h.arr.(h.len) <- (time, v);
    let i = ref h.len in
    h.len <- h.len + 1;
    while !i > 0 && fst h.arr.((!i - 1) / 2) > fst h.arr.(!i) do
      swap h !i ((!i - 1) / 2);
      i := (!i - 1) / 2
    done

  let peek_time h = if h.len = 0 then None else Some (fst h.arr.(0))

  let pop h =
    if h.len = 0 then None
    else begin
      let top = h.arr.(0) in
      h.len <- h.len - 1;
      h.arr.(0) <- h.arr.(h.len);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.len && fst h.arr.(l) < fst h.arr.(!smallest) then smallest := l;
        if r < h.len && fst h.arr.(r) < fst h.arr.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          swap h !i !smallest;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

(* {1 Clients} *)

type client = {
  cid : int;
  rng : Random.State.t;
      (* Per-client stream: the op/think sequence of every client is
         then independent of scheduling order, so a baseline run and a
         transformation run with the same seed issue identical
         workloads — the paired design behind the relative metrics. *)
  backoff : Backoff.t;
  mutable txn : Manager.txn_id option;
  mutable op_idx : int;
  mutable started : int;  (* when this transaction attempt became ready *)
}

let run ~kind ~workload ?(costs = default_costs) ?on_db ~background ~duration
    ~warmup () =
  let db = setup_db kind in
  let mgr = Db.manager db in
  let now = ref 0 in
  (* Events are stamped with virtual time, so a fixed seed yields a
     byte-identical trace run after run. *)
  Obs.Registry.set_clock (Db.obs db) (fun () -> float_of_int !now);
  (match on_db with Some f -> f db | None -> ());
  let transform =
    match background with
    | Transformation setup ->
      let t =
        match kind with
        | Foj_scenario _ -> Transform.foj db ~config:setup.config foj_spec
        | Split_scenario { assume_consistent; _ } ->
          Transform.split db ~config:setup.config
            (split_spec ~assume_consistent)
      in
      Some (setup, t)
    | No_background | Blocking_dump _ | Trigger_maintenance -> None
  in
  let dump =
    match background with
    | Blocking_dump _ ->
      Some
        (match kind with
         | Foj_scenario _ -> Nbsc_baseline.Insert_into_select.foj db foj_spec
         | Split_scenario { assume_consistent; _ } ->
           Nbsc_baseline.Insert_into_select.split db
             (split_spec ~assume_consistent))
    | No_background | Transformation _ | Trigger_maintenance -> None
  in
  let trigger =
    match background with
    | Trigger_maintenance ->
      Some
        (match kind with
         | Foj_scenario _ -> Nbsc_baseline.Trigger_method.install_foj db foj_spec
         | Split_scenario { assume_consistent; _ } ->
           Nbsc_baseline.Trigger_method.install_split db
             (split_spec ~assume_consistent))
    | No_background | Transformation _ | Blocking_dump _ -> None
  in
  let metrics = Metrics.create ~obs:(Db.obs db) () in
  let credit = ref 0. in
  let tf_busy = ref 0 in
  let retries = ref 0 in
  let tf_done_at = ref None in
  let wall_final = ref None in
  let heap = Heap.create () in
  let queue = Queue.create () in
  let clients =
    Array.init workload.n_clients (fun cid ->
        { cid;
          rng = Random.State.make [| workload.seed; cid |];
          backoff = Backoff.create ~op_cost:costs.op_cost ();
          txn = None;
          op_idx = 0;
          started = 0 })
  in
  (* Think times are randomized around the mean so arrivals behave like
     a stochastic process instead of a deterministic lockstep (constant
     think times produce zero queueing at any utilization). *)
  let think c =
    (workload.think_time / 2)
    + Random.State.int c.rng (max 1 workload.think_time)
  in
  Array.iter
    (fun c ->
       Heap.push heap (Random.State.int c.rng (max 1 workload.think_time)) c.cid)
    clients;

  let in_window time = time >= warmup && time <= duration in

  let source_ops_enabled () =
    match transform, dump with
    | _, Some d -> not (Nbsc_baseline.Insert_into_select.finished d)
    | Some (_, t), None ->
      (match Transform.phase t with
       | Transform.Done | Transform.Failed _ -> false
       | _ -> Transform.routing t = `Sources)
    | None, None -> true
  in

  let rand_text rng =
    Value.Text ("w" ^ string_of_int (Random.State.int rng 100000))
  in

  (* One update against the tables under transformation. *)
  let source_update rng txn =
    match kind with
    | Foj_scenario { r_rows; s_rows } ->
      if Random.State.float rng 1.0 < 0.75 then
        let key = Row.make [ Value.Int (1 + Random.State.int rng r_rows) ] in
        Manager.update mgr ~txn ~table:"R" ~key [ (1, rand_text rng) ]
      else
        let key = Row.make [ Value.Int (Random.State.int rng (max 1 s_rows)) ] in
        Manager.update mgr ~txn ~table:"S" ~key [ (1, rand_text rng) ]
    | Split_scenario { t_rows; _ } ->
      let key = Row.make [ Value.Int (1 + Random.State.int rng t_rows) ] in
      if Random.State.float rng 1.0 < 0.8 then
        Manager.update mgr ~txn ~table:"T" ~key [ (1, rand_text rng) ]
      else begin
        (* split-attribute churn, FD-preserving *)
        let c = Random.State.int rng 997 in
        Manager.update mgr ~txn ~table:"T" ~key
          [ (2, Value.Int c); (3, Value.Text (city_of c)) ]
      end
  in

  let dummy_update rng txn =
    let key = Row.make [ Value.Int (Random.State.int rng dummy_rows) ] in
    Manager.update mgr ~txn ~table:"D" ~key [ (1, rand_text rng) ]
  in

  let governor =
    match background with
    | Transformation s -> s.config.Transform.pace
    | No_background | Blocking_dump _ | Trigger_maintenance -> None
  in

  let restart ~aborted c delay =
    (match c.txn with
     | Some txn when Manager.is_active mgr txn -> ignore (Manager.abort mgr txn)
     | _ -> ());
    if aborted && in_window !now then Metrics.record_abort metrics;
    Backoff.reset c.backoff;
    c.txn <- None;
    c.op_idx <- 0;
    Heap.push heap (!now + delay) c.cid
  in

  (* Restart pause after an abort: jittered, so a crowd of victims of
     the same conflict does not re-collide in lockstep. *)
  let restart_delay c =
    match Backoff.next c.backoff c.rng `Deadlock with
    | `Retry d -> d
    | `Give_up -> costs.op_cost * 4
  in

  let finish_txn c =
    match c.txn with
    | None -> ()
    | Some txn ->
      (match Manager.commit mgr txn with
       | Ok () ->
         if in_window c.started && in_window !now then
           Metrics.record_txn metrics ~start:c.started ~finish:!now;
         (match governor with
          | Some g ->
            Governor.observe_response g ~rt:(float_of_int (!now - c.started))
          | None -> ());
         Backoff.reset c.backoff;
         c.txn <- None;
         c.op_idx <- 0;
         Heap.push heap (!now + think c) c.cid
       | Error _ -> restart ~aborted:true c (think c / 4))
  in

  (* Extra capacity consumed inside the most recent user operation by
     trigger-based maintenance (the Ronström comparator). *)
  let trigger_extra = ref 0 in

  let exec_client_op c =
    let txn =
      match c.txn with
      | Some txn -> txn
      | None ->
        let txn = Manager.begin_txn mgr in
        c.txn <- Some txn;
        txn
    in
    let use_source =
      Random.State.float c.rng 1.0 < workload.source_share
      && source_ops_enabled ()
    in
    let outcome =
      if use_source then source_update c.rng txn else dummy_update c.rng txn
    in
    (match outcome, trigger with
     | Ok (), Some tr ->
       let work = Nbsc_baseline.Trigger_method.last_op_work tr in
       trigger_extra :=
         (work * costs.apply_cost)
         + (if work > 0 then costs.trigger_rtt else 0)
     | _ -> trigger_extra := 0);
    let back_off cause =
      incr retries;
      match Backoff.next c.backoff c.rng cause with
      | `Retry d -> Heap.push heap (!now + d) c.cid
      | `Give_up ->
        (* Retry budget spent: abort cleanly rather than pound a lock
           we are evidently not getting. *)
        if in_window !now then Metrics.record_budget_exhausted metrics;
        restart ~aborted:true c (restart_delay c)
    in
    match outcome with
    | Ok () | Error `Not_found ->
      Backoff.reset c.backoff;
      c.op_idx <- c.op_idx + 1;
      if c.op_idx >= workload.ops_per_txn then finish_txn c
      else Queue.add c.cid queue
    | Error (`Blocked _) ->
      (* The engine's verdict was "wait" (no deadlock): back off and
         retry — jittered so equal losers don't reconvoy. *)
      if in_window !now then Metrics.record_lock_wait metrics;
      back_off `Blocked
    | Error (`Deadlock _) ->
      (* The engine sentenced us as deadlock victim. *)
      if in_window !now then Metrics.record_deadlock_abort metrics;
      restart ~aborted:true c (restart_delay c)
    | Error (`Latched _) -> back_off `Latched
    | Error (`Frozen _) -> back_off `Frozen
    | Error `Abort_only ->
      if Manager.is_victim mgr txn && in_window !now then
        Metrics.record_victim_kill metrics;
      restart ~aborted:true c (restart_delay c)
    | Error `Txn_not_active when Manager.is_victim mgr txn ->
      (* Wounded and already rolled back by the engine on another
         transaction's behalf; restart is all that's left. *)
      if in_window !now then Metrics.record_victim_kill metrics;
      restart ~aborted:true c (restart_delay c)
    | Error
        (`Duplicate_key | `No_table _ | `Txn_not_active | `Key_update
        | `Disk_full) ->
      (* [`Disk_full] is dead code here — the simulator never injects
         ENOSPC — but the manager's error set is closed, so it must be
         covered. *)
      restart ~aborted:false c (restart_delay c)
  in

  (* Cost of one transformation slice = the work it actually performed,
     in the same capacity units as user operations. *)
  let applied_ops t = (Transform.progress t).Transform.applied in
  let tf_slice () =
    match dump with
    | Some d ->
      let before = Nbsc_baseline.Insert_into_select.rows_processed d in
      (match Nbsc_baseline.Insert_into_select.step d ~limit:16 with
       | `Done -> if !tf_done_at = None then tf_done_at := Some !now
       | `Running -> ());
      ((Nbsc_baseline.Insert_into_select.rows_processed d - before)
       * costs.scan_cost)
      + 1
    | None ->
    match transform with
    | None -> 0
    | Some (_, t) ->
      (match Transform.phase t with
       | Transform.Done | Transform.Failed _ -> 0
       | _ ->
         let before = Transform.progress t in
         let before_applied = applied_ops t in
         let before_phase = Transform.phase t in
         let t0 = Sys.time () in
         let status = Transform.step t in
         let t1 = Sys.time () in
         let after = Transform.progress t in
         let after_applied = applied_ops t in
         (* Detect the final latched propagation for the wall-clock
            measurement of the synchronization window. *)
         (match before_phase, Transform.phase t with
          | (Transform.Propagating | Transform.Checking | Transform.Quiescing),
            (Transform.Draining | Transform.Done) ->
            wall_final := Some (int_of_float ((t1 -. t0) *. 1e9))
          | _ -> ());
         let cost =
           ((after.Transform.scanned - before.Transform.scanned)
            * costs.scan_cost)
           + ((after_applied - before_applied) * costs.apply_cost)
           + (match before_phase with
              | Transform.Checking -> costs.cc_cost
              | _ -> 0)
           + 1
         in
         (match status with
          | `Done -> if !tf_done_at = None then tf_done_at := Some !now
          | `Failed _ | `Running -> ());
         cost)
  in
  let tf_active () =
    match dump with
    | Some d -> not (Nbsc_baseline.Insert_into_select.finished d)
    | None ->
      (match transform with
       | None -> false
       | Some (_, t) ->
         (match Transform.phase t with
          | Transform.Done | Transform.Failed _ -> false
          | _ -> true))
  in

  (* {2 Main loop}

     The transformation's priority is an absolute CPU share with
     processor-sharing semantics, the paper's model: the background
     process continuously consumes [priority] of the capacity (so a
     user operation takes [op_cost / (1 - priority)] while the change
     is running — interference felt by {e every} transaction, growing
     with queueing as the server nears saturation), the transformation
     performs work at rate [priority] (so halving the priority roughly
     doubles the completion time, Fig. 4d), and below a threshold the
     propagator cannot keep up with log generation and never converges.

     Credit accrues at [priority] per unit of virtual time; whenever it
     covers a slice the transformation's real work runs, consuming the
     banked share rather than server time. *)
  let base_priority =
    match background with
    | Transformation s -> min 0.9 (max 0. s.priority)
    | Blocking_dump { dump_priority } -> min 0.95 (max 0. dump_priority)
    | No_background | Trigger_maintenance -> 0.
  in
  (* With a governor attached the effective CPU share breathes: the
     configured priority times the governor's gain, capped so users
     always keep some capacity. Without one this is the paper's static
     share — including Fig. 4(d)'s never-finishes region. *)
  let priority () =
    match governor with
    | None -> base_priority
    | Some g -> min 0.9 (base_priority *. Governor.gain g)
  in
  let advance dt =
    credit := !credit +. (priority () *. float_of_int dt);
    now := !now + dt
  in
  let inflated_op_cost () =
    int_of_float
      (ceil (float_of_int costs.op_cost /. (1. -. priority ())))
  in
  (* The governor cannot rely on the executor's own lag reports alone:
     a starved transformation barely steps, so its reports are as rare
     as the starvation is bad — exactly when escalation is needed. The
     simulator therefore also samples the lag on a steady virtual-time
     cadence. *)
  let gov_obs_period = costs.op_cost * 20 in
  let next_gov_obs = ref 0 in
  let gov_lag =
    match governor with
    | Some _ -> Some (Obs.Registry.gauge (Db.obs db) "governor.lag")
    | None -> None
  in
  let observe_governor () =
    match governor, transform with
    | Some g, Some (_, t) when !now >= !next_gov_obs ->
      next_gov_obs := !now + gov_obs_period;
      (match Transform.phase t with
       | Transform.Populating | Transform.Propagating | Transform.Checking
       | Transform.Quiescing | Transform.Draining ->
         let lag = (Transform.progress t).Transform.lag in
         (match gov_lag with
          | Some gauge -> Obs.Gauge.set gauge (float_of_int lag)
          | None -> ());
         Governor.observe_lag g ~lag
       | Transform.Done | Transform.Failed _ -> ())
    | _ -> ()
  in
  let break = ref false in
  while (not !break) && !now <= duration do
    (* Wake clients whose timers expired. *)
    let rec wake () =
      match Heap.peek_time heap with
      | Some t when t <= !now ->
        (match Heap.pop heap with
         | Some (_, cid) ->
           let c = clients.(cid) in
           (* A client re-entering mid-transaction keeps its start. *)
           if c.txn = None && c.op_idx = 0 then c.started <- !now;
           Queue.add cid queue;
           wake ()
         | None -> ())
      | _ -> ()
    in
    wake ();
    observe_governor ();
    let user_ready = not (Queue.is_empty queue) in
    if tf_active () && !credit >= 1. then begin
      (* Convert banked share into actual background work; the time was
         already accounted for by the inflated user-operation costs and
         idle advances. *)
      let cost = max 1 (tf_slice ()) in
      tf_busy := !tf_busy + cost;
      credit := !credit -. float_of_int cost
    end
    else if user_ready then begin
      let cid = Queue.pop queue in
      exec_client_op clients.(cid);
      advance
        (!trigger_extra
         + if tf_active () then inflated_op_cost () else costs.op_cost)
    end
    else begin
      (* Idle: jump to the next client wake-up or to the moment the
         background job has earned its next slice. *)
      let to_credit =
        if tf_active () && priority () > 0. then
          Some (int_of_float (ceil ((1. -. !credit) /. priority ())))
        else None
      in
      let to_wake =
        match Heap.peek_time heap with Some t -> Some (t - !now) | None -> None
      in
      match to_credit, to_wake with
      | None, None -> break := true
      | Some dt, None | None, Some dt -> advance (max 1 dt)
      | Some a, Some b -> advance (max 1 (min a b))
    end
  done;

  (* Roll back transactions left open so the engine state is clean. *)
  Array.iter
    (fun c ->
       match c.txn with
       | Some txn when Manager.is_active mgr txn -> ignore (Manager.abort mgr txn)
       | _ -> ())
    clients;

  (match trigger with
   | Some tr -> Nbsc_baseline.Trigger_method.uninstall tr
   | None -> ());
  { summary = Metrics.summarize metrics ~window:(duration - warmup);
    tf_done_at = !tf_done_at;
    tf_final_phase =
      (match transform with None -> None | Some (_, t) -> Some (Transform.phase t));
    tf_progress =
      (match transform with
       | None -> None
       | Some (_, t) -> Some (Transform.progress t));
    tf_busy = !tf_busy;
    retries = !retries;
    mgr_stats = Manager.Stats.get mgr;
    wall_clock_final_ns = !wall_final;
    wal_high_water = Nbsc_wal.Log.live_high_water (Db.log db);
    wal_truncated = Nbsc_wal.Log.truncated_total (Db.log db) }
