(** Discrete-event simulation of the paper's test setup (Sec. 6).

    The paper ran a Java main-memory prototype on a five-node cluster;
    we substitute a virtual-time capacity model over the {e real}
    engine: one server resource serves user operations and background
    transformation slices; simulated clients run real transactions
    (begin, [ops_per_txn] record updates, commit — the paper's workload
    shape) against the real lock manager and log, and the
    transformation performs its real work in bounded slices whose
    virtual cost is proportional to records processed.

    The {e priority} knob is an absolute CPU share with
    processor-sharing semantics: the background process continuously
    performs work at rate [priority], and while it runs every user
    operation costs [op_cost / (1 - priority)]. That reproduces the
    paper's observations: interference grows with server workload
    (queueing amplifies the inflation near saturation), completion time
    scales as 1/priority, and below the threshold where log generation
    outpaces the propagation share the transformation never converges
    (Figs. 4a-4d).

    Workload percentages follow the paper's definition: 100% is the
    number of concurrent clients that produces the highest throughput
    ({!clients_for_workload}).

    Contention handling is the engine's: clients act on the manager's
    verdicts ([`Blocked] → jittered exponential backoff with a retry
    budget, {!Backoff}; [`Deadlock] → clean restart as the sentenced
    victim; a wounded transaction restarts when it discovers its own
    death) instead of improvising wait-die. When the transformation's
    config carries a {!Nbsc_core.Governor}, its gain multiplies the
    configured priority each time credit accrues, and the simulator
    feeds the governor lag samples on a steady cadence plus a response
    time per commit — the anti-starvation loop that turns Fig. 4(d)'s
    never-finishes region into a converging one. *)

open Nbsc_txn
open Nbsc_core

(** Which transformation the scenario runs. *)
type kind =
  | Foj_scenario of { r_rows : int; s_rows : int }
  | Split_scenario of { t_rows : int; assume_consistent : bool }

type workload = {
  n_clients : int;
  think_time : int;
  ops_per_txn : int;        (** the paper uses 10 *)
  source_share : float;     (** fraction of updates on the tables under
                                transformation; the rest hit the dummy
                                table (paper: 20% / 80%) *)
  seed : int;
}

type costs = {
  op_cost : int;     (** one user operation, including its lock and log *)
  scan_cost : int;   (** one fuzzily scanned record *)
  apply_cost : int;  (** one relevant log record applied by the rules *)
  cc_cost : int;     (** one consistency-checker step *)
  trigger_rtt : int;
      (** synchronous round-trip a trigger-based maintainer pays inside
          the user transaction when the new tables live on another node
          — the distributed-DBMS overhead of the paper's Sec. 2.1
          critique of Ronstrom's method *)
}

val default_costs : costs

type tf_setup = {
  priority : float;           (** capacity share, e.g. 0.02 = 2% *)
  config : Transform.config;
}

(** What runs alongside the user workload. *)
type background =
  | No_background                  (** the baseline run *)
  | Transformation of tf_setup     (** the paper's framework *)
  | Blocking_dump of { dump_priority : float }
      (** [INSERT INTO ... SELECT]: latches the sources for its whole
          duration (ablation: what the paper's intro argues against) *)
  | Trigger_maintenance
      (** Ronström-style triggers: maintenance work charged inside the
          user operations that cause it (ablation for Sec. 2.1) *)

type result = {
  summary : Metrics.summary;
  tf_done_at : int option;       (** virtual completion time *)
  tf_final_phase : Transform.phase option;
  tf_progress : Transform.progress option;
  tf_busy : int;                 (** capacity spent on the transformation *)
  retries : int;                 (** user ops re-armed (locks/latches/freezes) *)
  mgr_stats : Manager.Stats.counters;
      (** the engine's own counters for the run — deadlocks detected,
          transactions wounded, block events registered *)
  wall_clock_final_ns : int option;
      (** wall-clock nanoseconds spent inside the final latched
          propagation, when one happened — the paper's "< 1 ms" claim *)
  wal_high_water : int;
      (** maximum live (untruncated) in-memory WAL records at any point
          of the run — the bounded-memory claim is that this stays flat
          as run length grows *)
  wal_truncated : int;
      (** log records reclaimed by low-water truncation over the run *)
}

val run :
  kind:kind -> workload:workload -> ?costs:costs ->
  ?on_db:(Nbsc_core.Db.t -> unit) -> background:background ->
  duration:int -> warmup:int -> unit -> result
(** One simulation run; pair a [No_background] run with any other of
    the same seed and divide ({!Metrics.relative}). Measurement covers
    [warmup..duration].

    [on_db] is called with the freshly built database before any
    background work starts — attach trace sinks or probes to [Db.obs]
    there. The registry's clock is set to the simulation's virtual
    time, so with a fixed seed the emitted trace is deterministic. *)

val clients_for_workload :
  ?think_time:int -> ?ops_per_txn:int -> ?costs:costs -> float -> int
(** [clients_for_workload pct] — client count giving [pct]% of the
    saturating workload. *)
