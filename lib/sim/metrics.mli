(** Measurement of user-transaction throughput and response time.

    The paper's evaluation reports {e relative} performance — during
    the schema change versus before it — so results come in pairs: a
    baseline run and a transformation run with identical workload and
    seed, reduced to ratios. *)

type sample_set

val create : ?obs:Nbsc_obs.Obs.Registry.t -> unit -> sample_set
(** The counters ([sim.committed], [sim.aborted], [sim.lock_waits],
    [sim.deadlock_aborts], [sim.victim_kills], [sim.budget_exhausted])
    and the [sim.response_time] histogram are registered in [obs] —
    pass the database's registry ([Db.obs]) to make the simulation
    readable through [Db.Observe.snapshot] and [nbsc stats]. A private
    registry is used when omitted. *)

val record_txn : sample_set -> start:int -> finish:int -> unit
(** A committed user transaction with its virtual start/finish times. *)

val record_abort : sample_set -> unit

val record_lock_wait : sample_set -> unit
(** An operation came back [`Blocked] and the client backed off. *)

val record_deadlock_abort : sample_set -> unit
(** The engine sentenced this client's transaction ([`Deadlock]). *)

val record_victim_kill : sample_set -> unit
(** The engine wounded this client's transaction on behalf of another
    (discovered on the next operation). *)

val record_budget_exhausted : sample_set -> unit
(** A retry budget ran out and the transaction aborted cleanly. *)

type summary = {
  committed : int;
  aborted : int;
  window : int;            (** virtual-time length of the window *)
  throughput : float;      (** committed transactions per 1000 time units *)
  mean_response : float;
  p95_response : float;
  max_response : int;
  lock_waits : int;        (** ops that blocked and backed off *)
  deadlock_aborts : int;   (** transactions sentenced as deadlock victims *)
  victim_kills : int;      (** transactions wounded for someone else *)
  budget_exhausted : int;  (** retry budgets spent (clean aborts) *)
}

val summarize : sample_set -> window:int -> summary

val pp_summary : Format.formatter -> summary -> unit

type relative = {
  rel_throughput : float;   (** with-change / baseline *)
  rel_response : float;     (** with-change / baseline (mean) *)
}

val relative : baseline:summary -> loaded:summary -> relative
