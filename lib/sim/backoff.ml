type cause = [ `Blocked | `Latched | `Frozen | `Deadlock ]

type policy = {
  base : int;
  factor : int;
  cap : int;
  budget : int;
}

let policy ?(factor = 2) ?(budget = max_int) ~base ~cap () =
  { base; factor; cap; budget }

let default_policies ~op_cost =
  let o = max 1 op_cost in
  (* Blocked: someone holds the record; delays double so a crowd of
     losers spreads out, and a bounded budget turns a hopeless wait
     into a clean abort. Latched: transformation latches last a quantum
     — come back quickly, forever. Frozen: a freeze lasts until the
     schema switch, so retry patiently and never give up (aborting
     would only re-hit the freeze). Deadlock: the restart pause after
     an engine-declared victim death. *)
  (fun cause ->
     match (cause : cause) with
     | `Blocked -> { base = o; factor = 2; cap = 32 * o; budget = 10 }
     | `Latched -> { base = max 1 (o / 2); factor = 2; cap = 8 * o;
                     budget = max_int }
     | `Frozen -> { base = 4 * o; factor = 2; cap = 64 * o; budget = max_int }
     | `Deadlock -> { base = 2 * o; factor = 2; cap = 16 * o; budget = max_int })

type t = {
  policies : cause -> policy;
  mutable blocked_attempts : int;
  mutable latched_attempts : int;
  mutable frozen_attempts : int;
  mutable deadlock_attempts : int;
}

let create ?policies ~op_cost () =
  let policies =
    match policies with Some p -> p | None -> default_policies ~op_cost
  in
  { policies;
    blocked_attempts = 0;
    latched_attempts = 0;
    frozen_attempts = 0;
    deadlock_attempts = 0 }

let attempts t = function
  | `Blocked -> t.blocked_attempts
  | `Latched -> t.latched_attempts
  | `Frozen -> t.frozen_attempts
  | `Deadlock -> t.deadlock_attempts

let bump t = function
  | `Blocked -> t.blocked_attempts <- t.blocked_attempts + 1
  | `Latched -> t.latched_attempts <- t.latched_attempts + 1
  | `Frozen -> t.frozen_attempts <- t.frozen_attempts + 1
  | `Deadlock -> t.deadlock_attempts <- t.deadlock_attempts + 1

let reset t =
  t.blocked_attempts <- 0;
  t.latched_attempts <- 0;
  t.frozen_attempts <- 0;
  t.deadlock_attempts <- 0

(* Half-jitter: at least d/2, at most d — never zero (a zero delay is a
   busy-spin in virtual time), never synchronized (the full-d retries
   of equal losers would reconvoy). *)
let jittered rng d =
  let d = max 2 d in
  (d / 2) + Random.State.int rng ((d / 2) + 1)

let next t rng cause =
  let p = t.policies cause in
  let n = attempts t cause in
  if n >= p.budget then `Give_up
  else begin
    bump t cause;
    let rec expo acc k = if k <= 0 || acc >= p.cap then acc
      else expo (acc * p.factor) (k - 1)
    in
    let d = min p.cap (expo p.base n) in
    `Retry (jittered rng d)
  end
