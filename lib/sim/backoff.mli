(** Jittered exponential backoff with per-cause policies.

    Replaces the fixed [retry_delay = 3 * op_cost] the simulator's
    clients used to share: a fixed delay makes every transaction
    blocked on the same hot record retry at the same instant — a retry
    convoy that re-collides forever. Here each retry waits an
    exponentially growing, per-client-randomized delay, with a
    separate policy per failure cause — [`Blocked] (bounded budget,
    after which the client aborts cleanly), [`Latched] (short, patient
    — transformation latches last one quantum), [`Frozen] (long,
    unbounded — a freeze only lifts at the schema switch) and
    [`Deadlock] (the restart pause after the engine kills a victim).

    One instance per client; attempts reset when an operation
    succeeds or the transaction restarts. *)

type cause = [ `Blocked | `Latched | `Frozen | `Deadlock ]

type policy = {
  base : int;    (** first delay, virtual time units *)
  factor : int;  (** delay multiplier per attempt *)
  cap : int;     (** delay ceiling *)
  budget : int;  (** attempts before [`Give_up] *)
}

val policy : ?factor:int -> ?budget:int -> base:int -> cap:int -> unit -> policy
(** [factor] defaults to 2, [budget] to unbounded. *)

val default_policies : op_cost:int -> cause -> policy

type t

val create : ?policies:(cause -> policy) -> op_cost:int -> unit -> t

val next : t -> Random.State.t -> cause -> [ `Retry of int | `Give_up ]
(** Charge one attempt of [cause]: the jittered delay to wait before
    retrying (in [[d/2, d]] for nominal delay [d] — never zero, never
    synchronized), or [`Give_up] once the cause's budget is spent. *)

val reset : t -> unit
(** Forget all attempts (operation succeeded / transaction restarted). *)
