type sample_set = {
  mutable durations : int list;
  mutable committed : int;
  mutable aborted : int;
  mutable lock_waits : int;
  mutable deadlock_aborts : int;
  mutable victim_kills : int;
  mutable budget_exhausted : int;
}

let create () =
  { durations = []; committed = 0; aborted = 0; lock_waits = 0;
    deadlock_aborts = 0; victim_kills = 0; budget_exhausted = 0 }

let record_txn t ~start ~finish =
  t.durations <- (finish - start) :: t.durations;
  t.committed <- t.committed + 1

let record_abort t = t.aborted <- t.aborted + 1
let record_lock_wait t = t.lock_waits <- t.lock_waits + 1
let record_deadlock_abort t = t.deadlock_aborts <- t.deadlock_aborts + 1
let record_victim_kill t = t.victim_kills <- t.victim_kills + 1
let record_budget_exhausted t = t.budget_exhausted <- t.budget_exhausted + 1

type summary = {
  committed : int;
  aborted : int;
  window : int;
  throughput : float;
  mean_response : float;
  p95_response : float;
  max_response : int;
  lock_waits : int;
  deadlock_aborts : int;
  victim_kills : int;
  budget_exhausted : int;
}

let summarize (t : sample_set) ~window =
  let n = t.committed in
  let sorted = List.sort Int.compare t.durations in
  let arr = Array.of_list sorted in
  let total = Array.fold_left ( + ) 0 arr in
  let pick q =
    if Array.length arr = 0 then 0
    else arr.(min (Array.length arr - 1)
                (int_of_float (q *. float_of_int (Array.length arr))))
  in
  { committed = n;
    aborted = t.aborted;
    window;
    throughput =
      (if window = 0 then 0. else 1000. *. float_of_int n /. float_of_int window);
    mean_response =
      (if n = 0 then 0. else float_of_int total /. float_of_int n);
    p95_response = float_of_int (pick 0.95);
    max_response =
      (if Array.length arr = 0 then 0 else arr.(Array.length arr - 1));
    lock_waits = t.lock_waits;
    deadlock_aborts = t.deadlock_aborts;
    victim_kills = t.victim_kills;
    budget_exhausted = t.budget_exhausted }

let pp_summary ppf s =
  Format.fprintf ppf
    "committed=%d aborted=%d tput=%.3f/kt mean_rt=%.1f p95=%.0f max=%d \
     waits=%d dl_aborts=%d victims=%d budget_out=%d"
    s.committed s.aborted s.throughput s.mean_response s.p95_response
    s.max_response s.lock_waits s.deadlock_aborts s.victim_kills
    s.budget_exhausted

type relative = {
  rel_throughput : float;
  rel_response : float;
}

let relative ~baseline ~loaded =
  { rel_throughput =
      (if baseline.throughput = 0. then 1.
       else loaded.throughput /. baseline.throughput);
    rel_response =
      (if baseline.mean_response = 0. then 1.
       else loaded.mean_response /. baseline.mean_response) }
