module Obs = Nbsc_obs.Obs

(* Counters live in an obs registry (the db's when the caller passes
   one) so `nbsc stats` and the sim report read the same numbers. The
   exact duration list is kept alongside the response-time histogram:
   the paper's p95/mean ratios need exact quantiles, which fixed
   buckets cannot give. *)
type sample_set = {
  mutable durations : int list;
  committed : Obs.Counter.t;
  aborted : Obs.Counter.t;
  lock_waits : Obs.Counter.t;
  deadlock_aborts : Obs.Counter.t;
  victim_kills : Obs.Counter.t;
  budget_exhausted : Obs.Counter.t;
  response : Obs.Histogram.t;
}

let create ?obs () =
  let r = match obs with Some r -> r | None -> Obs.Registry.create () in
  { durations = [];
    committed = Obs.Registry.counter r "sim.committed";
    aborted = Obs.Registry.counter r "sim.aborted";
    lock_waits = Obs.Registry.counter r "sim.lock_waits";
    deadlock_aborts = Obs.Registry.counter r "sim.deadlock_aborts";
    victim_kills = Obs.Registry.counter r "sim.victim_kills";
    budget_exhausted = Obs.Registry.counter r "sim.budget_exhausted";
    response = Obs.Registry.histogram r "sim.response_time" }

let record_txn t ~start ~finish =
  t.durations <- (finish - start) :: t.durations;
  Obs.Histogram.observe t.response (float_of_int (finish - start));
  Obs.Counter.incr t.committed

let record_abort t = Obs.Counter.incr t.aborted
let record_lock_wait t = Obs.Counter.incr t.lock_waits
let record_deadlock_abort t = Obs.Counter.incr t.deadlock_aborts
let record_victim_kill t = Obs.Counter.incr t.victim_kills
let record_budget_exhausted t = Obs.Counter.incr t.budget_exhausted

type summary = {
  committed : int;
  aborted : int;
  window : int;
  throughput : float;
  mean_response : float;
  p95_response : float;
  max_response : int;
  lock_waits : int;
  deadlock_aborts : int;
  victim_kills : int;
  budget_exhausted : int;
}

let summarize (t : sample_set) ~window =
  let n = Obs.Counter.value t.committed in
  let sorted = List.sort Int.compare t.durations in
  let arr = Array.of_list sorted in
  let total = Array.fold_left ( + ) 0 arr in
  let pick q =
    if Array.length arr = 0 then 0
    else arr.(min (Array.length arr - 1)
                (int_of_float (q *. float_of_int (Array.length arr))))
  in
  { committed = n;
    aborted = Obs.Counter.value t.aborted;
    window;
    throughput =
      (if window = 0 then 0. else 1000. *. float_of_int n /. float_of_int window);
    mean_response =
      (if n = 0 then 0. else float_of_int total /. float_of_int n);
    p95_response = float_of_int (pick 0.95);
    max_response =
      (if Array.length arr = 0 then 0 else arr.(Array.length arr - 1));
    lock_waits = Obs.Counter.value t.lock_waits;
    deadlock_aborts = Obs.Counter.value t.deadlock_aborts;
    victim_kills = Obs.Counter.value t.victim_kills;
    budget_exhausted = Obs.Counter.value t.budget_exhausted }

let pp_summary ppf s =
  Format.fprintf ppf
    "committed=%d aborted=%d tput=%.3f/kt mean_rt=%.1f p95=%.0f max=%d \
     waits=%d dl_aborts=%d victims=%d budget_out=%d"
    s.committed s.aborted s.throughput s.mean_response s.p95_response
    s.max_response s.lock_waits s.deadlock_aborts s.victim_kills
    s.budget_exhausted

type relative = {
  rel_throughput : float;
  rel_response : float;
}

let relative ~baseline ~loaded =
  { rel_throughput =
      (if baseline.throughput = 0. then 1.
       else loaded.throughput /. baseline.throughput);
    rel_response =
      (if baseline.mean_response = 0. then 1.
       else loaded.mean_response /. baseline.mean_response) }
