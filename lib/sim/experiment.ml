open Nbsc_core
module Obs = Nbsc_obs.Obs
module Json = Nbsc_obs.Json

type point = {
  x : float;
  rel_throughput : float;
  rel_response : float;
  tf_completed : bool;
  tf_done_at : int option;
}

let pp_point ppf p =
  Format.fprintf ppf "x=%6.2f  rel_tput=%.4f  rel_rt=%.4f  %s" p.x
    p.rel_throughput p.rel_response
    (match p.tf_done_at with
     | Some t -> Printf.sprintf "done@%d" t
     | None -> if p.tf_completed then "done" else "NOT-CONVERGED")

type setup = {
  scale : int;
  duration : int;
  warmup : int;
  seed : int;
  seeds : int;   (* runs averaged per point *)
  priority : float;
}

let default_setup =
  { scale = 50_000; duration = 3_000_000; warmup = 100_000; seed = 42;
    seeds = 3; priority = 0.02 }

let quick_setup =
  { scale = 2_000; duration = 300_000; warmup = 50_000; seed = 42;
    seeds = 1; priority = 0.02 }

let tf_config ?pace ~sync_gate () =
  { Transform.scan_batch = 16;
    propagate_batch = 32;
    analysis = Analysis.Remaining_records 8;
    strategy = Transform.Nonblocking_abort;
    drop_sources = false;
    sync_gate;
    pace }

let workload_of setup ~pct ~source_share =
  { Sim.n_clients = Sim.clients_for_workload pct;
    think_time = 21_000;
    ops_per_txn = 10;
    source_share;
    seed = setup.seed }

(* Baselines are deterministic in (kind, workload, duration, warmup), so
   share them across sweep points. *)
let baseline_cache : (string, Metrics.summary) Hashtbl.t = Hashtbl.create 16

let baseline ~kind ~workload ~duration ~warmup =
  let key =
    Format.asprintf "%s|%d|%d|%f|%d|%d|%d"
      (match kind with
       | Sim.Foj_scenario { r_rows; s_rows } ->
         Printf.sprintf "foj%d-%d" r_rows s_rows
       | Sim.Split_scenario { t_rows; assume_consistent } ->
         Printf.sprintf "split%d-%b" t_rows assume_consistent)
      workload.Sim.n_clients workload.Sim.think_time workload.Sim.source_share
      workload.Sim.seed duration warmup
  in
  match Hashtbl.find_opt baseline_cache key with
  | Some s -> s
  | None ->
    let r = Sim.run ~kind ~workload ~background:Sim.No_background ~duration ~warmup () in
    Hashtbl.replace baseline_cache key r.Sim.summary;
    r.Sim.summary

(* One sweep point: paired baseline/loaded runs, averaged over
   [seeds] independent seeds to tame queueing variance (the paper
   averaged "hundreds of tests"). *)
let paired_point ~kind ~workload ~tf ~duration ~warmup ~seeds ~x =
  let runs =
    List.init (max 1 seeds) (fun i ->
        let workload = { workload with Sim.seed = workload.Sim.seed + i } in
        let base = baseline ~kind ~workload ~duration ~warmup in
        let loaded =
          Sim.run ~kind ~workload ~background:(Sim.Transformation tf) ~duration
            ~warmup ()
        in
        (Metrics.relative ~baseline:base ~loaded:loaded.Sim.summary,
         loaded.Sim.tf_done_at))
  in
  let n = float_of_int (List.length runs) in
  let avg f = List.fold_left (fun acc (r, _) -> acc +. f r) 0. runs /. n in
  let done_at =
    List.fold_left
      (fun acc (_, d) -> match acc, d with Some a, Some b -> Some (max a b) | _ -> None)
      (Some 0) runs
  in
  { x;
    rel_throughput = avg (fun r -> r.Metrics.rel_throughput);
    rel_response = avg (fun r -> r.Metrics.rel_response);
    tf_completed = done_at <> None;
    tf_done_at = done_at }

(* {1 Figure 4(a)/(b): initial-population interference} *)

let population_sweep ~kind ~setup ~workloads =
  List.map
    (fun pct ->
       let workload = workload_of setup ~pct ~source_share:0.2 in
       (* Gate sync off: the figure measures the population/propagation
          background process, not the switch-over. *)
       let tf =
         { Sim.priority = setup.priority;
           config = tf_config ~sync_gate:(fun () -> false) () }
       in
       paired_point ~kind ~workload ~tf ~duration:setup.duration
         ~warmup:setup.warmup ~seeds:setup.seeds ~x:pct)
    workloads

let fig4ab_population ?(setup = default_setup) ~workloads () =
  population_sweep
    ~kind:(Sim.Split_scenario { t_rows = setup.scale; assume_consistent = true })
    ~setup ~workloads

let fig4ab_population_foj ?(setup = default_setup) ~workloads () =
  population_sweep
    ~kind:
      (Sim.Foj_scenario
         { r_rows = setup.scale; s_rows = max 1 (setup.scale * 2 / 5) })
    ~setup ~workloads

(* {1 Figure 4(c): log-propagation interference}

   A smaller table makes the population finish inside the warmup, so
   the measurement window sees steady-state propagation. The priority
   follows the update mix: four times more relevant log records need
   roughly four times the propagation bandwidth (the paper makes the
   same adjustment: "the priority could be kept lower in the 20%
   case"). *)

let propagation_sweep ~kind ~setup ~source_share ~workloads =
  let priority =
    if source_share > 0.5 then setup.priority *. 4. else setup.priority
  in
  List.map
    (fun pct ->
       let workload = workload_of setup ~pct ~source_share in
       let tf =
         { Sim.priority; config = tf_config ~sync_gate:(fun () -> false) () }
       in
       paired_point ~kind ~workload ~tf ~duration:setup.duration
         ~warmup:setup.warmup ~seeds:setup.seeds ~x:pct)
    workloads

(* The propagation figures need the population finished before the
   measurement window: the table is sized so the background share
   completes the scan within the warmup. *)
let fig4c_propagation ?(setup = default_setup) ~source_share ~workloads () =
  let setup = { setup with scale = max 100 (setup.scale / 50) } in
  propagation_sweep
    ~kind:(Sim.Split_scenario { t_rows = setup.scale; assume_consistent = true })
    ~setup ~source_share ~workloads

let fig4c_propagation_foj ?(setup = default_setup) ~source_share ~workloads () =
  let setup = { setup with scale = max 100 (setup.scale / 50) } in
  propagation_sweep
    ~kind:
      (Sim.Foj_scenario
         { r_rows = setup.scale; s_rows = max 1 (setup.scale * 2 / 5) })
    ~setup ~source_share ~workloads

(* {1 Figure 4(d): priority versus completion time and interference} *)

let fig4d_priority ?(setup = default_setup) ~workload_pct ~priorities () =
  let kind =
    Sim.Split_scenario
      { t_rows = max 100 (setup.scale / 25); assume_consistent = true }
  in
  let workload = workload_of setup ~pct:workload_pct ~source_share:0.2 in
  (* A generous horizon: points that do not finish within it are the
     paper's "transformation never finishes". One seed per point — the
     runs are long and completion time is the headline. *)
  let horizon = setup.duration * 4 in
  List.map
    (fun priority ->
       let tf = { Sim.priority; config = tf_config ~sync_gate:(fun () -> true) () } in
       paired_point ~kind ~workload ~tf ~duration:horizon ~warmup:setup.warmup
         ~seeds:1 ~x:priority)
    priorities

(* Same sweep with the anti-starvation governor attached: the
   configured priority is only a floor — when the lag stops shrinking
   the governor escalates the effective share until the transformation
   converges, so every point completes (the acceptance criterion that
   distinguishes this from the static sweep above). *)
let fig4d_priority_governed ?(setup = default_setup) ~workload_pct ~priorities
    () =
  let kind =
    Sim.Split_scenario
      { t_rows = max 100 (setup.scale / 25); assume_consistent = true }
  in
  let workload = workload_of setup ~pct:workload_pct ~source_share:0.2 in
  let horizon = setup.duration * 4 in
  List.map
    (fun priority ->
       (* Fresh governor per point — instances are mutable and must not
          be shared between runs. *)
       let pace = Governor.create () in
       let tf =
         { Sim.priority;
           config = tf_config ~pace ~sync_gate:(fun () -> true) () }
       in
       paired_point ~kind ~workload ~tf ~duration:horizon ~warmup:setup.warmup
         ~seeds:1 ~x:priority)
    priorities

(* {1 Synchronization window} *)

type sync_report = {
  final_records : int;
  wall_ns : int option;
  forced_aborts : int;
  strategy_name : string;
}

let strategy_name = function
  | Transform.Blocking_commit -> "blocking-commit"
  | Transform.Nonblocking_abort -> "non-blocking-abort"
  | Transform.Nonblocking_commit -> "non-blocking-commit"

let sync_window ?(setup = quick_setup) ~strategy () =
  let kind =
    Sim.Split_scenario { t_rows = setup.scale; assume_consistent = true }
  in
  let workload = workload_of setup ~pct:75. ~source_share:0.2 in
  let config = { (tf_config ~sync_gate:(fun () -> true) ()) with Transform.strategy } in
  let tf = { Sim.priority = 0.05; config } in
  let r =
    Sim.run ~kind ~workload ~background:(Sim.Transformation tf)
      ~duration:(setup.duration * 10) ~warmup:setup.warmup ()
  in
  match r.Sim.tf_progress with
  | None ->
    (* The scenario registered a transformation background, so the run
       should always surface its progress; a missing report means the
       configuration (horizon, priority, gate) never let it start —
       a caller error worth reporting, not a crash. *)
    Error
      (Nbsc_error.invalidf
         "sync_window (%s): the transformation never reported progress \
          within the horizon"
         (strategy_name strategy))
  | Some p ->
    Ok
      { final_records = p.Transform.final_records;
        wall_ns = r.Sim.wall_clock_final_ns;
        forced_aborts = p.Transform.forced_aborts;
        strategy_name = strategy_name strategy }

(* {1 Method comparison (ablation)} *)

type method_row = {
  label : string;
  m_rel_throughput : float;
  m_rel_response : float;
  m_done_at : int option;
  m_retries : int;
}

let pp_method_row ppf r =
  Format.fprintf ppf "%-22s rel_tput=%.4f rel_rt=%.4f retries=%d %s" r.label
    r.m_rel_throughput r.m_rel_response r.m_retries
    (match r.m_done_at with
     | Some t -> Printf.sprintf "done@%d" t
     | None -> "running at horizon")

let method_comparison ?(setup = quick_setup) ~workload_pct () =
  let kind =
    Sim.Split_scenario { t_rows = setup.scale; assume_consistent = true }
  in
  let workload = workload_of setup ~pct:workload_pct ~source_share:0.2 in
  (* Measure from t = 0: the blocking comparator does its damage right
     at the start, and all three methods are measured identically. *)
  let duration = setup.duration and warmup = 0 in
  let base = baseline ~kind ~workload ~duration ~warmup in
  let row label background =
    let r = Sim.run ~kind ~workload ~background ~duration ~warmup () in
    let rel = Metrics.relative ~baseline:base ~loaded:r.Sim.summary in
    { label;
      m_rel_throughput = rel.Metrics.rel_throughput;
      m_rel_response = rel.Metrics.rel_response;
      m_done_at = r.Sim.tf_done_at;
      m_retries = r.Sim.retries }
  in
  [ row "log-based (this paper)"
      (Sim.Transformation
         { Sim.priority = setup.priority;
           config = tf_config ~sync_gate:(fun () -> true) () });
    row "blocking INSERT-SELECT" (Sim.Blocking_dump { dump_priority = 0.9 });
    row "trigger-based" Sim.Trigger_maintenance ]

(* {1 Threshold ablation} *)

type threshold_row = {
  t_threshold : int;
  t_final_records : int;
  t_done_at : int option;
  t_rel_response : float;
}

let pp_threshold_row ppf r =
  Format.fprintf ppf "threshold=%6d final-iteration=%6d rel_rt=%.4f %s"
    r.t_threshold r.t_final_records r.t_rel_response
    (match r.t_done_at with
     | Some t -> Printf.sprintf "done@%d" t
     | None -> "NOT DONE")

let threshold_sweep ?(setup = quick_setup) ~thresholds () =
  let kind =
    Sim.Split_scenario { t_rows = setup.scale; assume_consistent = true }
  in
  let workload = workload_of setup ~pct:75. ~source_share:0.2 in
  let duration = setup.duration * 4 and warmup = setup.warmup in
  let base = baseline ~kind ~workload ~duration ~warmup in
  List.map
    (fun threshold ->
       let config =
         { (tf_config ~sync_gate:(fun () -> true) ()) with
           Transform.analysis = Analysis.Remaining_records threshold }
       in
       let r =
         Sim.run ~kind ~workload
           ~background:(Sim.Transformation { Sim.priority = 0.05; config })
           ~duration ~warmup ()
       in
       let rel = Metrics.relative ~baseline:base ~loaded:r.Sim.summary in
       { t_threshold = threshold;
         t_final_records =
           (match r.Sim.tf_progress with
            | Some p -> p.Transform.final_records
            | None -> 0);
         t_done_at = r.Sim.tf_done_at;
         t_rel_response = rel.Metrics.rel_response })
    thresholds

(* {1 Batch-size ablation} *)

type batch_row = {
  b_batch : int;
  b_done_at : int option;
  b_rel_response : float;
  b_rel_throughput : float;
}

let pp_batch_row ppf r =
  Format.fprintf ppf "batch=%5d rel_tput=%.4f rel_rt=%.4f %s" r.b_batch
    r.b_rel_throughput r.b_rel_response
    (match r.b_done_at with
     | Some t -> Printf.sprintf "done@%d" t
     | None -> "NOT DONE")

let batch_sweep ?(setup = quick_setup) ~batches () =
  let kind =
    Sim.Split_scenario { t_rows = setup.scale; assume_consistent = true }
  in
  let workload = workload_of setup ~pct:75. ~source_share:0.2 in
  let duration = setup.duration * 4 and warmup = setup.warmup in
  let base = baseline ~kind ~workload ~duration ~warmup in
  List.map
    (fun batch ->
       let config =
         { (tf_config ~sync_gate:(fun () -> true) ()) with
           Transform.scan_batch = batch;
           propagate_batch = batch }
       in
       let r =
         Sim.run ~kind ~workload
           ~background:(Sim.Transformation { Sim.priority = 0.05; config })
           ~duration ~warmup ()
       in
       let rel = Metrics.relative ~baseline:base ~loaded:r.Sim.summary in
       { b_batch = batch;
         b_done_at = r.Sim.tf_done_at;
         b_rel_response = rel.Metrics.rel_response;
         b_rel_throughput = rel.Metrics.rel_throughput })
    batches

(* {1 Iteration-analysis policy comparison} *)

type policy_row = {
  p_name : string;
  p_final_records : int;
  p_done_at : int option;
  p_iterations : int;
}

let pp_policy_row ppf r =
  Format.fprintf ppf "%-32s final-iteration=%5d iterations=%3d %s" r.p_name
    r.p_final_records r.p_iterations
    (match r.p_done_at with
     | Some t -> Printf.sprintf "done@%d" t
     | None -> "NOT DONE")

let policy_comparison ?(setup = quick_setup) () =
  let kind =
    Sim.Split_scenario { t_rows = setup.scale; assume_consistent = true }
  in
  let workload = workload_of setup ~pct:75. ~source_share:0.2 in
  let duration = setup.duration * 4 and warmup = setup.warmup in
  let row (name, policy) =
    let config =
      { (tf_config ~sync_gate:(fun () -> true) ()) with
        Transform.analysis = policy }
    in
    let r =
      Sim.run ~kind ~workload
        ~background:(Sim.Transformation { Sim.priority = 0.05; config })
        ~duration ~warmup ()
    in
    match r.Sim.tf_progress with
    | None ->
      (* Same contract as [sync_window]: a silent no-progress run would
         poison the comparison, so report it instead of crashing. *)
      Error
        (Nbsc_error.invalidf
           "policy_comparison (%s): the transformation never reported \
            progress within the horizon"
           name)
    | Some p ->
      Ok
        { p_name = name;
          p_final_records = p.Transform.final_records;
          p_done_at = r.Sim.tf_done_at;
          p_iterations = p.Transform.iterations }
  in
  List.fold_left
    (fun acc point ->
       match acc with
       | Error _ as e -> e
       | Ok rows ->
         (match row point with
          | Ok r -> Ok (r :: rows)
          | Error _ as e -> e))
    (Ok [])
    [ ("remaining-records <= 8", Analysis.Remaining_records 8);
      ("remaining-records <= 512", Analysis.Remaining_records 512);
      ("iteration-shrink x0.5", Analysis.Iteration_shrink { factor = 0.5; floor = 4 });
      ("estimated-time <= 2 steps", Analysis.Estimated_time { max_steps = 2. }) ]
  |> Result.map List.rev

(* {1 A traced fixed-seed run} *)

type phase_timing = {
  ph_name : string;
  ph_span : int;
  ph_parent : int option;
  ph_start : float;
  ph_end : float option;
}

let phase_timings events =
  let opens = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (function
      | Obs.Span_open { span; at; _ } ->
        Hashtbl.replace opens span.Obs.span_id (span, at, None);
        order := span.Obs.span_id :: !order
      | Obs.Span_close { span; at; _ } ->
        (match Hashtbl.find_opt opens span.Obs.span_id with
         | Some (sp, start, None) ->
           Hashtbl.replace opens span.Obs.span_id (sp, start, Some at)
         | _ -> ())
      | Obs.Point _ -> ())
    events;
  List.rev_map
    (fun id ->
       let sp, start, stop = Hashtbl.find opens id in
       { ph_name = sp.Obs.span_name;
         ph_span = sp.Obs.span_id;
         ph_parent = sp.Obs.span_parent;
         ph_start = start;
         ph_end = stop })
    !order

let phases_to_json phases =
  Json.List
    (List.map
       (fun p ->
          Json.Obj
            ([ ("name", Json.String p.ph_name); ("span", Json.Int p.ph_span) ]
             @ (match p.ph_parent with
                | Some i -> [ ("parent", Json.Int i) ]
                | None -> [])
             @ [ ("start", Json.Float p.ph_start) ]
             @ (match p.ph_end with
                | Some e -> [ ("end", Json.Float e) ]
                | None -> [])))
       phases)

type traced = {
  tr_result : Sim.result;
  tr_events : Obs.event list;
  tr_phases : phase_timing list;
}

let traced_run ?(setup = quick_setup) ?sink () =
  let kind =
    Sim.Split_scenario { t_rows = setup.scale; assume_consistent = true }
  in
  let workload = workload_of setup ~pct:75. ~source_share:0.2 in
  let tf =
    { Sim.priority = 0.05; config = tf_config ~sync_gate:(fun () -> true) () }
  in
  let mem = Obs.memory_sink () in
  let on_db db =
    Obs.Registry.attach (Db.obs db) mem;
    match sink with
    | Some s -> Obs.Registry.attach (Db.obs db) s
    | None -> ()
  in
  let r =
    Sim.run ~kind ~workload ~on_db ~background:(Sim.Transformation tf)
      ~duration:(setup.duration * 10) ~warmup:setup.warmup ()
  in
  let events = Obs.memory_events mem in
  { tr_result = r; tr_events = events; tr_phases = phase_timings events }
