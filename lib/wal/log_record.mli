(** Log record types.

    The log follows ARIES conventions (paper assumption, Sec. 1): every
    transaction writes redo+undo information for each operation, undo
    during rollback produces compensating log records (CLRs), and each
    record carries the LSN of the transaction's previous record
    ([prev_lsn]) so rollback can walk the chain.

    The transformation framework adds three record kinds of its own:
    fuzzy marks delimiting log propagation iterations (Sec. 3.2–3.3)
    and the consistency checker's begin/ok pair (Sec. 5.3). *)

open Nbsc_value

type txn_id = int

val system_txn : txn_id
(** Pseudo transaction id used by framework records (fuzzy marks, CC
    records, checkpoints). *)

(** A physiological operation on one record of one table. [Update]
    carries only the changed columns — the paper's rules are designed
    around exactly this (Sec. 4.2, "update log records are less
    informative"), reading the rest from the transformed table. The
    [before] sides support undo and are what a real DBMS would log. *)
type op =
  | Insert of { table : string; row : Row.t }
  | Delete of { table : string; key : Row.Key.t; before : Row.t }
  | Update of {
      table : string;
      key : Row.Key.t;
      changes : (int * Value.t) list;   (** redo: position, new value *)
      before : (int * Value.t) list;    (** undo: position, old value *)
    }

val op_table : op -> string
val op_key : Schema.t -> op -> Row.Key.t
(** The primary key of the record the op touches ([Insert] projects the
    row through the schema's key positions). *)

val invert : key:Row.Key.t -> op -> op
(** [invert ~key op] is the undo of [op] (the redo part of its CLR);
    [key] is the primary key of the touched record, needed because an
    [Insert] inverts to a [Delete] identified by key. *)

type body =
  | Begin
  | Commit
  | Abort_begin      (** transaction started rolling back *)
  | Abort_done       (** rollback complete; locks may be released *)
  | Op of op
  | Clr of { undo_next : Lsn.t; op : op }
      (** compensating record: [op] is the inverse already applied;
          [undo_next] is the next record to undo (ARIES). *)
  | Fuzzy_mark of { active : (txn_id * Lsn.t) list }
      (** snapshot of the active-transaction table: each active
          transaction with the LSN of its first log record. *)
  | Cc_begin of { table : string; key : Row.Key.t }
  | Cc_ok of { table : string; key : Row.Key.t; image : Row.t }
  | Checkpoint of { active : (txn_id * Lsn.t) list }
  | Job_state of { job : string; state : string }
      (** a registered background job (schema change) exists with the
          given opaque serialized state — written at job creation and
          re-emitted by every durability checkpoint, so crash recovery
          can rebuild and resume the job (see {!Nbsc_engine.Recovery}) *)
  | Job_done of { job : string }
      (** the job was cancelled (aborted); recovery forgets it. Normal
          completion writes no record — it becomes durable at the next
          checkpoint, which finds the job gone and drops its
          [Job_state] from the WAL (a job's final target writes are
          unlogged, so a completion marker could otherwise outlive
          them). *)
  | Watermark of { job : string; high : bool }
      (** DBLog-style chunk bracket written by the virtual-cut
          populator: a low watermark ([high = false]) opens a chunk
          scan and a high watermark closes it. Log records between the
          pair identify in-chunk rows superseded by concurrent writes;
          replay and recovery ignore watermarks. *)

type t = {
  lsn : Lsn.t;
  txn : txn_id;
  prev_lsn : Lsn.t;  (** previous record of the same transaction *)
  body : body;
}

val encode : t -> string
(** Single-line, self-delimiting encoding; inverse of {!decode}. *)

val encode_into : scratch:Buffer.t -> Buffer.t -> t -> unit
(** Append the bytes of [encode] to the second buffer without
    materializing intermediate strings. [scratch] is clobbered (holds
    one nested composite at a time); a long-lived sink passes the same
    two buffers for every record. *)

val decode : string -> t
(** @raise Failure on malformed input. *)

val pp : Format.formatter -> t -> unit
val pp_body : Format.formatter -> body -> unit
