open Nbsc_value

type txn_id = int

let system_txn = 0

type op =
  | Insert of { table : string; row : Row.t }
  | Delete of { table : string; key : Row.Key.t; before : Row.t }
  | Update of {
      table : string;
      key : Row.Key.t;
      changes : (int * Value.t) list;
      before : (int * Value.t) list;
    }

let op_table = function
  | Insert { table; _ } | Delete { table; _ } | Update { table; _ } -> table

let op_key schema = function
  | Insert { row; _ } -> Row.Key.of_row row (Schema.key_positions schema)
  | Delete { key; _ } | Update { key; _ } -> key

let invert ~key = function
  | Insert { table; row } -> Delete { table; key; before = row }
  | Delete { table; key = _; before } -> Insert { table; row = before }
  | Update { table; key; changes; before } ->
    Update { table; key; changes = before; before = changes }

type body =
  | Begin
  | Commit
  | Abort_begin
  | Abort_done
  | Op of op
  | Clr of { undo_next : Lsn.t; op : op }
  | Fuzzy_mark of { active : (txn_id * Lsn.t) list }
  | Cc_begin of { table : string; key : Row.Key.t }
  | Cc_ok of { table : string; key : Row.Key.t; image : Row.t }
  | Checkpoint of { active : (txn_id * Lsn.t) list }
  | Job_state of { job : string; state : string }
  | Job_done of { job : string }
  | Watermark of { job : string; high : bool }

type t = {
  lsn : Lsn.t;
  txn : txn_id;
  prev_lsn : Lsn.t;
  body : body;
}

(* Encoding: chunk list via Codec.encode_string_list. First chunk is a
   tag, the rest are fields. *)

let encode_active active =
  Codec.encode_string_list
    (List.concat_map
       (fun (t, l) -> [ string_of_int t; Lsn.to_string l ])
       active)

let decode_active s =
  let rec pair = function
    | [] -> []
    | [ _ ] -> failwith "Log_record: odd active list"
    | t :: l :: rest -> (int_of_string t, Lsn.of_int (int_of_string l)) :: pair rest
  in
  pair (Codec.decode_string_list s)

let encode_op = function
  | Insert { table; row } -> [ "ins"; table; Codec.encode_row row ]
  | Delete { table; key; before } ->
    [ "del"; table; Codec.encode_row key; Codec.encode_row before ]
  | Update { table; key; changes; before } ->
    [ "upd"; table; Codec.encode_row key;
      Codec.encode_changes changes; Codec.encode_changes before ]

let decode_op = function
  | [ "ins"; table; row ] -> Insert { table; row = Codec.decode_row row }
  | [ "del"; table; key; before ] ->
    Delete
      { table; key = Codec.decode_row key; before = Codec.decode_row before }
  | [ "upd"; table; key; changes; before ] ->
    Update
      { table;
        key = Codec.decode_row key;
        changes = Codec.decode_changes changes;
        before = Codec.decode_changes before }
  | _ -> failwith "Log_record: bad op encoding"

let encode_body = function
  | Begin -> [ "begin" ]
  | Commit -> [ "commit" ]
  | Abort_begin -> [ "abort_begin" ]
  | Abort_done -> [ "abort_done" ]
  | Op op -> "op" :: encode_op op
  | Clr { undo_next; op } -> "clr" :: Lsn.to_string undo_next :: encode_op op
  | Fuzzy_mark { active } -> [ "fuzzy"; encode_active active ]
  | Cc_begin { table; key } -> [ "cc_begin"; table; Codec.encode_row key ]
  | Cc_ok { table; key; image } ->
    [ "cc_ok"; table; Codec.encode_row key; Codec.encode_row image ]
  | Checkpoint { active } -> [ "ckpt"; encode_active active ]
  | Job_state { job; state } -> [ "job"; job; state ]
  | Job_done { job } -> [ "job_done"; job ]
  | Watermark { job; high } -> [ "wmark"; job; (if high then "hi" else "lo") ]

let decode_body = function
  | [ "begin" ] -> Begin
  | [ "commit" ] -> Commit
  | [ "abort_begin" ] -> Abort_begin
  | [ "abort_done" ] -> Abort_done
  | "op" :: rest -> Op (decode_op rest)
  | "clr" :: undo_next :: rest ->
    Clr { undo_next = Lsn.of_int (int_of_string undo_next); op = decode_op rest }
  | [ "fuzzy"; active ] -> Fuzzy_mark { active = decode_active active }
  | [ "cc_begin"; table; key ] -> Cc_begin { table; key = Codec.decode_row key }
  | [ "cc_ok"; table; key; image ] ->
    Cc_ok { table; key = Codec.decode_row key; image = Codec.decode_row image }
  | [ "ckpt"; active ] -> Checkpoint { active = decode_active active }
  | [ "job"; job; state ] -> Job_state { job; state }
  | [ "job_done"; job ] -> Job_done { job }
  | [ "wmark"; job; bound ] ->
    (match bound with
     | "hi" -> Watermark { job; high = true }
     | "lo" -> Watermark { job; high = false }
     | _ -> failwith "Log_record: bad watermark bound")
  | _ -> failwith "Log_record: bad body encoding"

let encode t =
  Codec.encode_string_list
    (Lsn.to_string t.lsn :: string_of_int t.txn :: Lsn.to_string t.prev_lsn
     :: encode_body t.body)

(* Buffer-direct encoding for the persist sink: byte-identical to
   [encode], without materializing the record (or its nested row /
   change-list composites) as intermediate strings. [scratch] holds one
   composite at a time; the caller provides it so a long-lived sink can
   reuse the same two buffers for every record. *)

let add_composite ~scratch buf fill =
  Buffer.clear scratch;
  fill scratch;
  Codec.add_chunk_of_buffer buf scratch

let encode_active_into ~scratch buf active =
  add_composite ~scratch buf (fun b ->
      List.iter
        (fun (t, l) ->
           Codec.add_chunk b (string_of_int t);
           Codec.add_chunk b (Lsn.to_string l))
        active)

let encode_op_into ~scratch buf = function
  | Insert { table; row } ->
    Codec.add_chunk buf "ins";
    Codec.add_chunk buf table;
    add_composite ~scratch buf (fun b -> Codec.encode_row_into b row)
  | Delete { table; key; before } ->
    Codec.add_chunk buf "del";
    Codec.add_chunk buf table;
    add_composite ~scratch buf (fun b -> Codec.encode_row_into b key);
    add_composite ~scratch buf (fun b -> Codec.encode_row_into b before)
  | Update { table; key; changes; before } ->
    Codec.add_chunk buf "upd";
    Codec.add_chunk buf table;
    add_composite ~scratch buf (fun b -> Codec.encode_row_into b key);
    add_composite ~scratch buf (fun b -> Codec.encode_changes_into b changes);
    add_composite ~scratch buf (fun b -> Codec.encode_changes_into b before)

let encode_body_into ~scratch buf = function
  | Begin -> Codec.add_chunk buf "begin"
  | Commit -> Codec.add_chunk buf "commit"
  | Abort_begin -> Codec.add_chunk buf "abort_begin"
  | Abort_done -> Codec.add_chunk buf "abort_done"
  | Op op ->
    Codec.add_chunk buf "op";
    encode_op_into ~scratch buf op
  | Clr { undo_next; op } ->
    Codec.add_chunk buf "clr";
    Codec.add_chunk buf (Lsn.to_string undo_next);
    encode_op_into ~scratch buf op
  | Fuzzy_mark { active } ->
    Codec.add_chunk buf "fuzzy";
    encode_active_into ~scratch buf active
  | Cc_begin { table; key } ->
    Codec.add_chunk buf "cc_begin";
    Codec.add_chunk buf table;
    add_composite ~scratch buf (fun b -> Codec.encode_row_into b key)
  | Cc_ok { table; key; image } ->
    Codec.add_chunk buf "cc_ok";
    Codec.add_chunk buf table;
    add_composite ~scratch buf (fun b -> Codec.encode_row_into b key);
    add_composite ~scratch buf (fun b -> Codec.encode_row_into b image)
  | Checkpoint { active } ->
    Codec.add_chunk buf "ckpt";
    encode_active_into ~scratch buf active
  | Job_state { job; state } ->
    Codec.add_chunk buf "job";
    Codec.add_chunk buf job;
    Codec.add_chunk buf state
  | Job_done { job } ->
    Codec.add_chunk buf "job_done";
    Codec.add_chunk buf job
  | Watermark { job; high } ->
    Codec.add_chunk buf "wmark";
    Codec.add_chunk buf job;
    Codec.add_chunk buf (if high then "hi" else "lo")

let encode_into ~scratch buf t =
  Codec.add_chunk buf (Lsn.to_string t.lsn);
  Codec.add_chunk buf (string_of_int t.txn);
  Codec.add_chunk buf (Lsn.to_string t.prev_lsn);
  encode_body_into ~scratch buf t.body

let decode s =
  match Codec.decode_string_list s with
  | lsn :: txn :: prev :: body ->
    { lsn = Lsn.of_int (int_of_string lsn);
      txn = int_of_string txn;
      prev_lsn = Lsn.of_int (int_of_string prev);
      body = decode_body body }
  | _ -> failwith "Log_record: bad record encoding"

let pp_op ppf = function
  | Insert { table; row } -> Format.fprintf ppf "insert %s %a" table Row.pp row
  | Delete { table; key; _ } ->
    Format.fprintf ppf "delete %s key=%a" table Row.Key.pp key
  | Update { table; key; changes; _ } ->
    Format.fprintf ppf "update %s key=%a set{%a}" table Row.Key.pp key
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         (fun ppf (i, v) -> Format.fprintf ppf "#%d:=%a" i Value.pp v))
      changes

let pp_active ppf active =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf (t, l) -> Format.fprintf ppf "T%d@%a" t Lsn.pp l)
    ppf active

let pp_body ppf = function
  | Begin -> Format.pp_print_string ppf "BEGIN"
  | Commit -> Format.pp_print_string ppf "COMMIT"
  | Abort_begin -> Format.pp_print_string ppf "ABORT"
  | Abort_done -> Format.pp_print_string ppf "ABORT-DONE"
  | Op op -> pp_op ppf op
  | Clr { undo_next; op } ->
    Format.fprintf ppf "CLR(undo_next=%a) %a" Lsn.pp undo_next pp_op op
  | Fuzzy_mark { active } ->
    Format.fprintf ppf "FUZZY-MARK[%a]" pp_active active
  | Cc_begin { table; key } ->
    Format.fprintf ppf "CC-BEGIN %s %a" table Row.Key.pp key
  | Cc_ok { table; key; image } ->
    Format.fprintf ppf "CC-OK %s %a image=%a" table Row.Key.pp key Row.pp image
  | Checkpoint { active } ->
    Format.fprintf ppf "CHECKPOINT[%a]" pp_active active
  | Job_state { job; _ } -> Format.fprintf ppf "JOB-STATE %s" job
  | Job_done { job } -> Format.fprintf ppf "JOB-DONE %s" job
  | Watermark { job; high } ->
    Format.fprintf ppf "WMARK-%s %s" (if high then "HI" else "LO") job

let pp ppf t =
  Format.fprintf ppf "%a T%d prev=%a %a" Lsn.pp t.lsn t.txn Lsn.pp t.prev_lsn
    pp_body t.body
