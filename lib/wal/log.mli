(** The append-only log.

    A single sequential log shared by all transactions (the paper's
    method relies on the log being sequential and ordered consistently
    with serialization order — Theorem 1). The buffer assigns LSNs,
    supports random access by LSN and forward cursors, and can be
    serialized/replayed, which is what makes the transformation and
    recovery "log only". *)

type t

val create : ?base:Lsn.t -> unit -> t
(** [base] (default [Lsn.zero]) is the LSN the log starts {e after}: the
    first appended record gets [Lsn.next base]. A database restored
    from a snapshot taken at LSN L continues its log with [~base:L], so
    record LSNs stay monotonic across the restart. *)

val base : t -> Lsn.t

val append : t -> txn:Log_record.txn_id -> prev_lsn:Lsn.t ->
  Log_record.body -> Lsn.t
(** Appends a record, assigning the next LSN (returned). *)

val set_sink : t -> (Log_record.t -> unit) option -> unit
(** A callback invoked synchronously on every append — the hook
    durability uses to mirror the log to a file (see
    {!Nbsc_engine.Persist}). *)

val head : t -> Lsn.t
(** LSN of the most recently appended record; [Lsn.zero] when empty. *)

val length : t -> int

val get : t -> Lsn.t -> Log_record.t
(** @raise Not_found if no record has this LSN (out of range). *)

val fold : t -> ?from:Lsn.t -> ?upto:Lsn.t -> init:'a ->
  f:('a -> Log_record.t -> 'a) -> 'a
(** Fold over records with [from <= lsn <= upto] in LSN order. [from]
    defaults to the first record, [upto] to the head. *)

val iter : t -> ?from:Lsn.t -> ?upto:Lsn.t -> (Log_record.t -> unit) -> unit

(** A forward cursor over the log. Cursors see records appended after
    their creation (the log propagator keeps one for its whole life). *)
module Cursor : sig
  type log = t
  type t

  val make : log -> from:Lsn.t -> t
  (** Positioned so the first [next] returns the record at [from] (or
      the first record with a larger LSN if none). *)

  val next : t -> Log_record.t option
  (** [None] when the cursor has caught up with the head. *)

  val peek : t -> Log_record.t option
  val position : t -> Lsn.t
  (** LSN the next [next] would return (head+1 if caught up). *)

  val lag : t -> int
  (** Number of records between the cursor and the head — the
      "remaining work" quantity the iteration analysis inspects
      (paper, Sec. 3.3). *)
end

val to_lines : t -> string list
(** Serialize every record ({!Log_record.encode}), oldest first. *)

val of_lines : string list -> t
(** Rebuild a log from serialized records.
    @raise Failure on malformed input, non-contiguous LSNs, or an
    inconsistent back-pointer chain (a [prev_lsn] / CLR [undo_next]
    not strictly behind its record, or an in-range [prev_lsn] that
    references another transaction's record). Pointers below the
    rebuilt log's base are accepted: a retained log suffix may carry
    completed transactions whose chains start in the truncated
    prefix. *)

val pp : Format.formatter -> t -> unit
