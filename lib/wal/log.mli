(** The append-only log.

    A single sequential log shared by all transactions (the paper's
    method relies on the log being sequential and ordered consistently
    with serialization order — Theorem 1). The buffer assigns LSNs,
    supports random access by LSN and forward cursors, and can be
    serialized/replayed, which is what makes the transformation and
    recovery "log only".

    Storage is a chain of fixed-size segments: append is O(1) and never
    copies history, and {!truncate_to} frees whole segments below a
    low-water mark so the in-memory log stays bounded while the engine
    runs (who may still need a record — active transactions' undo
    chains, live propagator cursors, the durability floor — is the
    {!Nbsc_txn.Manager}'s business; the log only executes the cut). *)

exception Truncated of Lsn.t
(** Raised on any access to an LSN at or below {!base}: the record was
    freed by {!truncate_to} and silently substituting a later record
    would be a correctness bug (a propagator resuming below the cut
    must fail loudly, not replay from the wrong position). *)

type t

val create : ?base:Lsn.t -> ?segment_size:int -> unit -> t
(** [base] (default [Lsn.zero]) is the LSN the log starts {e after}: the
    first appended record gets [Lsn.next base]. A database restored
    from a snapshot taken at LSN L continues its log with [~base:L], so
    record LSNs stay monotonic across the restart. [segment_size]
    (default 1024) is the records-per-segment granularity of
    allocation and truncation. *)

val base : t -> Lsn.t
(** Records with LSN <= [base] are unavailable ({!Truncated}). Grows
    monotonically under {!truncate_to}. *)

val append : t -> txn:Log_record.txn_id -> prev_lsn:Lsn.t ->
  Log_record.body -> Lsn.t
(** Appends a record, assigning the next LSN (returned). *)

val set_sink : t -> (Log_record.t -> unit) option -> unit
(** A callback invoked synchronously on every append — the hook
    durability uses to mirror the log to a file (see
    {!Nbsc_engine.Persist}). The sink receives the structured record;
    any string encoding is the sink's own business. *)

val set_syncer : t -> (unit -> unit) option -> unit
(** A callback the commit path invokes through {!sync} when the records
    appended so far must be durable — the group-commit barrier. A sink
    that buffers writes installs a syncer that flushes; a sink that
    writes through installs none. *)

val sync : t -> unit
(** Invoke the registered syncer, if any. After [sync] returns, every
    record handed to the sink is durable. A no-op without a syncer. *)

val head : t -> Lsn.t
(** LSN of the most recently appended record; [base] when no live
    records remain. *)

val length : t -> int
(** Number of live (non-truncated) records: [head - base]. *)

val truncate_to : t -> Lsn.t -> unit
(** [truncate_to t lsn] frees every record with LSN < [lsn]; segments
    wholly below the cut are dropped, and the segment containing [lsn]
    survives with its dead slots cleared. Truncating backwards or past
    the head is clamped, never an error — callers pass the computed
    low-water mark and the log keeps at least the suffix from it. *)

val segments : t -> int
(** Number of allocated segments. *)

val truncated_total : t -> int
(** Total records freed by {!truncate_to} over the log's life. *)

val live_high_water : t -> int
(** Maximum value {!length} ever reached — the bounded-memory claim is
    about this number staying flat as [head] grows without bound. *)

val get : t -> Lsn.t -> Log_record.t
(** @raise Truncated if the LSN is at or below {!base}.
    @raise Not_found if the LSN is beyond the head. *)

val fold : t -> ?from:Lsn.t -> ?upto:Lsn.t -> init:'a ->
  f:('a -> Log_record.t -> 'a) -> 'a
(** Fold over records with [from <= lsn <= upto] in LSN order. [from]
    defaults to the first live record, [upto] to the head.
    @raise Truncated if an explicit [from] is at or below {!base}. *)

val iter : t -> ?from:Lsn.t -> ?upto:Lsn.t -> (Log_record.t -> unit) -> unit

(** A forward cursor over the log. Cursors see records appended after
    their creation (the log propagator keeps one for its whole life).
    A cursor does {e not} protect its position from {!truncate_to} —
    register long-lived cursors with [Manager.pin_wal] so the low-water
    computation keeps their suffix alive; an unpinned cursor that falls
    below [base] raises {!Truncated} on its next access. *)
module Cursor : sig
  type log = t
  type t

  val make : log -> from:Lsn.t -> t
  (** Positioned so the first [next] returns the record at [from] (or
      the first record with a larger LSN if none).
      @raise Truncated if [from] is at or below the log's base. *)

  val next : t -> Log_record.t option
  (** [None] when the cursor has caught up with the head.
      @raise Truncated if the position fell below the log's base. *)

  val peek : t -> Log_record.t option
  val position : t -> Lsn.t
  (** LSN the next [next] would return (head+1 if caught up). *)

  val lag : t -> int
  (** Number of records between the cursor and the head — the
      "remaining work" quantity the iteration analysis inspects
      (paper, Sec. 3.3). *)
end

val to_records : t -> Log_record.t list
(** Every live record, oldest first. The structured record is the
    log's interchange format; the string codec ({!Log_record.encode})
    lives at the persist/replay boundary only. *)

val of_records : Log_record.t list -> t
(** Rebuild a log from records; the rebuilt base is one below the
    first record's LSN (a retained suffix reloads with the truncated
    prefix still unavailable).
    @raise Failure on non-contiguous LSNs or an inconsistent
    back-pointer chain (a [prev_lsn] / CLR [undo_next] not strictly
    behind its record, or an in-range [prev_lsn] that references
    another transaction's record). Pointers below the rebuilt log's
    base are accepted: a retained log suffix may carry completed
    transactions whose chains start in the truncated prefix. *)

val pp : Format.formatter -> t -> unit
