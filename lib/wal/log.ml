(* Records live in a chain of fixed-size segments keyed by segment
   number, so append never copies history and truncation frees whole
   segments at once. The record with LSN l sits in segment (l-1)/size
   at slot (l-1) mod size; access by LSN stays O(1) and cursors are
   just absolute LSNs. Slots are options only because OCaml arrays
   need a fill value; every live slot in (base, head] is [Some _]. *)

exception Truncated of Lsn.t

let () =
  Printexc.register_printer (function
    | Truncated lsn ->
      Some (Printf.sprintf "Log.Truncated(lsn %s)" (Lsn.to_string lsn))
    | _ -> None)

type t = {
  seg_size : int;
  segs : (int, Log_record.t option array) Hashtbl.t;
  mutable base : int;  (* LSNs <= base have been truncated away *)
  mutable head : int;  (* LSN of the most recent record *)
  mutable truncated : int;  (* total records freed over the log's life *)
  mutable high_water : int;  (* max live records ever held at once *)
  mutable sink : (Log_record.t -> unit) option;
  mutable syncer : (unit -> unit) option;
  (* Head-segment cache: append hits the same segment [seg_size] times
     in a row, so remember it instead of a hash lookup per record. *)
  mutable head_seg : Log_record.t option array;
  mutable head_seg_no : int;  (* -1 = cache empty *)
}

let default_segment_size = 1024

let create ?(base = Lsn.zero) ?(segment_size = default_segment_size) () =
  if segment_size <= 0 then invalid_arg "Log.create: segment_size";
  { seg_size = segment_size;
    segs = Hashtbl.create 16;
    base = Lsn.to_int base;
    head = Lsn.to_int base;
    truncated = 0;
    high_water = 0;
    sink = None;
    syncer = None;
    head_seg = [||];
    head_seg_no = -1 }

let set_sink t sink = t.sink <- sink
let set_syncer t syncer = t.syncer <- syncer
let sync t = match t.syncer with Some f -> f () | None -> ()

let base t = Lsn.of_int t.base
let head t = Lsn.of_int t.head
let length t = t.head - t.base
let segments t = Hashtbl.length t.segs
let truncated_total t = t.truncated
let live_high_water t = t.high_water

let seg_no t lsn = (lsn - 1) / t.seg_size
let slot_no t lsn = (lsn - 1) mod t.seg_size

let slot t lsn =
  match Hashtbl.find_opt t.segs (seg_no t lsn) with
  | None -> assert false
  | Some arr ->
    (match arr.(slot_no t lsn) with Some r -> r | None -> assert false)

let append t ~txn ~prev_lsn body =
  let l = t.head + 1 in
  let record = { Log_record.lsn = Lsn.of_int l; txn; prev_lsn; body } in
  let sn = seg_no t l in
  let arr =
    if sn = t.head_seg_no then t.head_seg
    else begin
      let arr =
        match Hashtbl.find_opt t.segs sn with
        | Some arr -> arr
        | None ->
          let arr = Array.make t.seg_size None in
          Hashtbl.replace t.segs sn arr;
          arr
      in
      t.head_seg <- arr;
      t.head_seg_no <- sn;
      arr
    end
  in
  arr.(slot_no t l) <- Some record;
  t.head <- l;
  if t.head - t.base > t.high_water then t.high_water <- t.head - t.base;
  (match t.sink with Some f -> f record | None -> ());
  Lsn.of_int l

let get t lsn =
  let l = Lsn.to_int lsn in
  if l <= t.base then raise (Truncated lsn);
  if l > t.head then raise Not_found;
  slot t l

let truncate_to t lsn =
  (* Keep every record with LSN >= lsn; never truncate backwards and
     never past the head. *)
  let nb = min (max t.base (Lsn.to_int lsn - 1)) t.head in
  if nb > t.base then begin
    t.truncated <- t.truncated + (nb - t.base);
    t.base <- nb;
    (* The cut may free the cached head segment (fully-truncated log at
       a segment boundary) — drop the cache rather than reason about it. *)
    t.head_seg <- [||];
    t.head_seg_no <- -1;
    Hashtbl.filter_map_inplace
      (fun sn arr ->
         let seg_last = (sn + 1) * t.seg_size in
         if seg_last <= t.base then None
         else begin
           (* The segment straddling the new base survives whole, but
              its dead slots drop their record references. *)
           let seg_first = (sn * t.seg_size) + 1 in
           for l = seg_first to min t.base seg_last do
             arr.((l - 1) mod t.seg_size) <- None
           done;
           Some arr
         end)
      t.segs
  end

let fold t ?from ?upto ~init ~f =
  let lo =
    match from with
    | None -> t.base + 1
    | Some l ->
      let l = Lsn.to_int l in
      if l <= t.base then raise (Truncated (Lsn.of_int l));
      l
  in
  let hi =
    match upto with Some l -> min t.head (Lsn.to_int l) | None -> t.head
  in
  let acc = ref init in
  for l = lo to hi do
    acc := f !acc (slot t l)
  done;
  !acc

let iter t ?from ?upto f = fold t ?from ?upto ~init:() ~f:(fun () r -> f r)

module Cursor = struct
  type log = t

  type t = {
    log : log;
    mutable next_lsn : int;  (* LSN of the next record to return *)
  }

  let make log ~from =
    let l = Lsn.to_int from in
    if l <= log.base then raise (Truncated from);
    { log; next_lsn = l }

  let next c =
    if c.next_lsn <= c.log.base then
      raise (Truncated (Lsn.of_int c.next_lsn));
    if c.next_lsn > c.log.head then None
    else begin
      let r = slot c.log c.next_lsn in
      c.next_lsn <- c.next_lsn + 1;
      Some r
    end

  let peek c =
    if c.next_lsn <= c.log.base then
      raise (Truncated (Lsn.of_int c.next_lsn));
    if c.next_lsn > c.log.head then None else Some (slot c.log c.next_lsn)

  let position c = Lsn.of_int c.next_lsn
  let lag c = max 0 (c.log.head - c.next_lsn + 1)
end

let to_records t =
  fold t ?from:None ?upto:None ~init:[] ~f:(fun acc r -> r :: acc)
  |> List.rev

let of_records records =
  let base =
    match records with
    | [] -> Lsn.zero
    | first :: _ -> Lsn.of_int (Lsn.to_int first.Log_record.lsn - 1)
  in
  let t = create ~base () in
  List.iter
    (fun (r : Log_record.t) ->
       (* Back-pointers must point strictly backwards; a forward pointer
          would send recovery's undo chase past the head (Not_found deep
          inside redo) — reject it here as corruption instead. *)
       if Lsn.(r.Log_record.prev_lsn >= r.Log_record.lsn) then
         failwith "Log.of_records: prev_lsn not behind its record";
       (match r.Log_record.body with
        | Log_record.Clr { undo_next; _ } ->
          if Lsn.(undo_next >= r.Log_record.lsn) then
            failwith "Log.of_records: CLR undo_next not behind its record"
        | _ -> ());
       let lsn =
         append t ~txn:r.Log_record.txn ~prev_lsn:r.Log_record.prev_lsn
           r.Log_record.body
       in
       if not (Lsn.equal lsn r.Log_record.lsn) then
         failwith "Log.of_records: non-contiguous LSNs")
    records;
  (* Chain consistency: an in-range prev_lsn must reference a record of
     the same transaction (pointers below [base] are legal — the chain
     of a long-completed transaction may extend into a truncated log
     prefix). Checked after the rebuild so every target is present. *)
  iter t (fun r ->
      let prev = r.Log_record.prev_lsn in
      if Lsn.(prev > Lsn.of_int t.base) then begin
        let target = get t prev in
        if target.Log_record.txn <> r.Log_record.txn then
          failwith "Log.of_records: prev_lsn crosses transactions"
      end);
  t

let pp ppf t = iter t (fun r -> Format.fprintf ppf "%a@." Log_record.pp r)
