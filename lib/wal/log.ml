(* Records live in a growable array; the record with LSN l sits at
   index l-1, so access by LSN is O(1) and cursors are just integers.
   Slots are options only because OCaml arrays need a fill value; every
   slot below [len] is [Some _]. *)

type t = {
  mutable records : Log_record.t option array;
  mutable len : int;
  base : int;
  mutable sink : (Log_record.t -> unit) option;
}

let create ?(base = Lsn.zero) () =
  { records = Array.make 1024 None; len = 0; base = Lsn.to_int base;
    sink = None }

let set_sink t sink = t.sink <- sink

let base t = Lsn.of_int t.base

let grow t =
  let cap = Array.length t.records in
  if t.len >= cap then begin
    let bigger = Array.make (cap * 2) None in
    Array.blit t.records 0 bigger 0 t.len;
    t.records <- bigger
  end

let slot t i =
  match t.records.(i) with
  | Some r -> r
  | None -> assert false

let append t ~txn ~prev_lsn body =
  let lsn = Lsn.of_int (t.base + t.len + 1) in
  let record = { Log_record.lsn; txn; prev_lsn; body } in
  grow t;
  t.records.(t.len) <- Some record;
  t.len <- t.len + 1;
  (match t.sink with Some f -> f record | None -> ());
  lsn

let head t = Lsn.of_int (t.base + t.len)
let length t = t.len

let get t lsn =
  let i = Lsn.to_int lsn - t.base - 1 in
  if i < 0 || i >= t.len then raise Not_found;
  slot t i

let fold t ?from ?upto ~init ~f =
  let lo =
    match from with Some l -> max 0 (Lsn.to_int l - t.base - 1) | None -> 0
  in
  let hi =
    match upto with
    | Some l -> min t.len (Lsn.to_int l - t.base)
    | None -> t.len
  in
  let acc = ref init in
  for i = lo to hi - 1 do
    acc := f !acc (slot t i)
  done;
  !acc

let iter t ?from ?upto f = fold t ?from ?upto ~init:() ~f:(fun () r -> f r)

module Cursor = struct
  type log = t

  type t = {
    log : log;
    mutable pos : int;  (* index of next record to return *)
  }

  let make log ~from = { log; pos = max 0 (Lsn.to_int from - log.base - 1) }

  let next c =
    if c.pos >= c.log.len then None
    else begin
      let r = slot c.log c.pos in
      c.pos <- c.pos + 1;
      Some r
    end

  let peek c = if c.pos >= c.log.len then None else Some (slot c.log c.pos)
  let position c = Lsn.of_int (c.log.base + c.pos + 1)
  let lag c = c.log.len - c.pos
end

let to_lines t =
  fold t ?from:None ?upto:None ~init:[]
    ~f:(fun acc r -> Log_record.encode r :: acc)
  |> List.rev

let of_lines lines =
  let base =
    match lines with
    | [] -> Lsn.zero
    | first :: _ ->
      let r = Log_record.decode first in
      Lsn.of_int (Lsn.to_int r.Log_record.lsn - 1)
  in
  let t = create ~base () in
  List.iter
    (fun line ->
       let r = Log_record.decode line in
       (* Back-pointers must point strictly backwards; a forward pointer
          would send recovery's undo chase past the head (Not_found deep
          inside redo) — reject it here as corruption instead. *)
       if Lsn.(r.Log_record.prev_lsn >= r.Log_record.lsn) then
         failwith "Log.of_lines: prev_lsn not behind its record";
       (match r.Log_record.body with
        | Log_record.Clr { undo_next; _ } ->
          if Lsn.(undo_next >= r.Log_record.lsn) then
            failwith "Log.of_lines: CLR undo_next not behind its record"
        | _ -> ());
       let lsn =
         append t ~txn:r.Log_record.txn ~prev_lsn:r.Log_record.prev_lsn
           r.Log_record.body
       in
       if not (Lsn.equal lsn r.Log_record.lsn) then
         failwith "Log.of_lines: non-contiguous LSNs")
    lines;
  (* Chain consistency: an in-range prev_lsn must reference a record of
     the same transaction (pointers below [base] are legal — the chain
     of a long-completed transaction may extend into a truncated log
     prefix). Checked after the rebuild so every target is present. *)
  iter t (fun r ->
      let prev = r.Log_record.prev_lsn in
      if Lsn.(prev > Lsn.of_int t.base) then begin
        let target = get t prev in
        if target.Log_record.txn <> r.Log_record.txn then
          failwith "Log.of_lines: prev_lsn crosses transactions"
      end);
  t

let pp ppf t = iter t (fun r -> Format.fprintf ppf "%a@." Log_record.pp r)
