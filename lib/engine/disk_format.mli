(** The shared on-disk format: versioned headers, per-line CRC framing,
    and the snapshot trailer. {!Persist} writes and reads it; {!Scrub}
    verifies it offline — this module is the single definition both
    trust.

    Layout (format version 2, the PR-8 bump):
    - [snapshot.nbsc] — line 1 the unframed magic {!snapshot_magic};
      then one framed line per snapshot payload line; last a framed
      trailer [@end:<payload line count>]. Written whole and
      rename-swapped, so it is always complete — a missing trailer
      means truncation.
    - [wal.nbsc] — line 1 the unframed magic {!wal_magic}; then one
      framed line per log record, appended in place. A crash can leave
      an {e unterminated} final line (torn append — dropped on reopen);
      any {e terminated} line that fails its checksum is corruption and
      is reported, never trusted.

    A framed line is [<8 lowercase hex chars>:<payload>], the hex field
    being the CRC-32 ({!Nbsc_value.Crc32}) of the payload bytes. The
    fixed-width field keeps the separator unambiguous: payloads may
    contain ':'. Pre-v2 directories have no header line and are
    rejected with a clear message rather than misread. *)

val version : int

val snapshot_magic : string
val wal_magic : string

val snapshot_path : string -> string
val wal_path : string -> string

val obs : unit -> Nbsc_obs.Obs.Registry.t
(** Process-global registry for the storage-integrity instruments:
    [storage.crc_failures] (lines that failed verification, counted by
    {!unframe}), [storage.io_retries] (transient-EIO retries performed
    by the persist layer) and [storage.disk_full_stalls] (ENOSPC events
    that put the engine into degraded mode). *)

val crc_failures : unit -> Nbsc_obs.Obs.Counter.t
val io_retries : unit -> Nbsc_obs.Obs.Counter.t
val disk_full_stalls : unit -> Nbsc_obs.Obs.Counter.t

val frame : string -> string
(** Frame one payload line. *)

val frame_into : Buffer.t -> Buffer.t -> unit
(** [frame_into out payload] appends the framed form of [payload]'s
    contents to [out] without materialising intermediate strings — the
    WAL sink's hot path (PR 6 discipline). *)

val unframe :
  path:string -> line:int -> ?lsn:int -> string ->
  (string, Nbsc_error.t) result
(** Verify and strip one framed line, returning the payload. On any
    failure — missing frame, non-hex checksum field, checksum mismatch
    — returns [`Corrupt] carrying the file, line number, optional LSN
    and both checksums, and counts [storage.crc_failures]. *)

val check_header :
  magic:string -> path:string -> string option ->
  (unit, Nbsc_error.t) result
(** Validate a file's first line against the expected magic. [None]
    (empty file), a different version's magic, and a header-less pre-v2
    file each get a distinct clear [`Corrupt]. *)

val trailer : int -> string
(** The snapshot trailer payload for [n] payload lines. *)

val trailer_count : string -> int option
(** [Some n] iff the payload is a well-formed trailer. *)
