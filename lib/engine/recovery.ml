open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn

type table_def = {
  def_name : string;
  def_schema : Schema.t;
  def_indexes : (string * string list) list;
}

let table_def ?(indexes = []) def_name def_schema =
  { def_name; def_schema; def_indexes = indexes }

type report = {
  redo_applied : int;
  redo_skipped : int;
  losers : Log_record.txn_id list;
  undo_applied : int;
  jobs : (string * string) list;
}

(* Analysis: who never completed, and what was each one's last record?
   Also collects the in-flight background jobs: the latest Job_state
   payload per job name, forgotten again on Job_done. *)
let analysis log =
  let last_lsn = Hashtbl.create 64 in
  let active = Hashtbl.create 64 in
  let job_states = Hashtbl.create 8 in
  let job_order = ref [] in
  Log.iter log (fun r ->
      (match r.Log_record.body with
       | Log_record.Job_state { job; state } ->
         if not (Hashtbl.mem job_states job) then
           job_order := job :: !job_order;
         Hashtbl.replace job_states job state
       | Log_record.Job_done { job } -> Hashtbl.remove job_states job
       | _ -> ());
      let txn = r.Log_record.txn in
      if txn <> Log_record.system_txn then begin
        Hashtbl.replace last_lsn txn r.Log_record.lsn;
        match r.Log_record.body with
        | Log_record.Begin -> Hashtbl.replace active txn ()
        | Log_record.Commit | Log_record.Abort_done -> Hashtbl.remove active txn
        | Log_record.Abort_begin | Log_record.Op _ | Log_record.Clr _
        | Log_record.Fuzzy_mark _ | Log_record.Cc_begin _ | Log_record.Cc_ok _
        | Log_record.Checkpoint _ | Log_record.Job_state _
        | Log_record.Job_done _ | Log_record.Watermark _ -> ()
      end);
  let losers =
    Hashtbl.fold (fun txn () acc -> txn :: acc) active []
    |> List.sort Int.compare
  in
  let jobs =
    List.rev !job_order
    |> List.filter_map (fun job ->
        match Hashtbl.find_opt job_states job with
        | Some state -> Some (job, state)
        | None -> None)
  in
  ( losers,
    (fun txn -> try Hashtbl.find last_lsn txn with Not_found -> Lsn.zero),
    jobs )

let replay_into catalog log =
  let losers, last_lsn_of, jobs = analysis log in
  (* Redo: history repeats, including CLRs (repeating history, ARIES). *)
  let redo_applied = ref 0 and redo_skipped = ref 0 in
  let redo lsn op =
    match Catalog.find_opt catalog (Log_record.op_table op) with
    | None -> incr redo_skipped
    | Some table ->
      let key = Log_record.op_key (Table.schema table) op in
      let already_done =
        match Table.find table key with
        | Some record -> Lsn.(record.Record.lsn >= lsn)
        | None -> false
      in
      if already_done then incr redo_skipped
      else begin
        match Apply.op_to_table table ~lsn op with
        | Ok () -> incr redo_applied
        | Error (`Duplicate_key | `Not_found) ->
          (* Tolerated: overlapping history (a suffix replayed twice, or
             a delete already reflected in a snapshot) skips. *)
          incr redo_skipped
      end
  in
  Log.iter log (fun r ->
      match r.Log_record.body with
      | Log_record.Op op -> redo r.Log_record.lsn op
      | Log_record.Clr { op; _ } -> redo r.Log_record.lsn op
      | Log_record.Begin | Log_record.Commit | Log_record.Abort_begin
      | Log_record.Abort_done | Log_record.Fuzzy_mark _ | Log_record.Cc_begin _
      | Log_record.Cc_ok _ | Log_record.Checkpoint _ | Log_record.Job_state _
      | Log_record.Job_done _ | Log_record.Watermark _ -> ());
  (* Undo: roll losers back.  No new log records are produced — the
     recovered catalog is the deliverable, not a continued log. *)
  let undo_applied = ref 0 in
  let undo_lsn = Lsn.next (Log.head log) in
  (* Chains stop at the log base as well as at zero: a retained suffix
     cannot hold records below its base, and a loser's chain never
     reaches that far anyway (checkpoints are sharp, so every
     transaction in the suffix began after the truncation point). *)
  let rec undo_chain lsn =
    if Lsn.(lsn > Lsn.zero) && Lsn.(lsn > Log.base log) then begin
      let r = Log.get log lsn in
      match r.Log_record.body with
      | Log_record.Op op ->
        (match Catalog.find_opt catalog (Log_record.op_table op) with
         | None -> undo_chain r.Log_record.prev_lsn
         | Some table ->
           let key = Log_record.op_key (Table.schema table) op in
           let inverse = Log_record.invert ~key op in
           (match Apply.op_to_table table ~lsn:undo_lsn inverse with
            | Ok () -> incr undo_applied
            | Error (`Duplicate_key | `Not_found) -> ());
           undo_chain r.Log_record.prev_lsn)
      | Log_record.Clr { undo_next; _ } -> undo_chain undo_next
      | Log_record.Begin -> ()
      | Log_record.Commit | Log_record.Abort_begin | Log_record.Abort_done
      | Log_record.Fuzzy_mark _ | Log_record.Cc_begin _ | Log_record.Cc_ok _
      | Log_record.Checkpoint _ | Log_record.Job_state _
      | Log_record.Job_done _ | Log_record.Watermark _ ->
        undo_chain r.Log_record.prev_lsn
    end
  in
  List.iter (fun txn -> undo_chain (last_lsn_of txn)) losers;
  { redo_applied = !redo_applied;
    redo_skipped = !redo_skipped;
    losers;
    undo_applied = !undo_applied;
    jobs }

let recover ~table_defs log =
  let catalog = Catalog.create () in
  List.iter
    (fun d ->
       ignore
         (Catalog.create_table catalog ~indexes:d.def_indexes ~name:d.def_name
            d.def_schema))
    table_defs;
  (catalog, replay_into catalog log)

let pp_report ppf r =
  Format.fprintf ppf
    "redo: %d applied, %d skipped; losers: [%s]; undo: %d applied; jobs: [%s]"
    r.redo_applied r.redo_skipped
    (String.concat "; " (List.map string_of_int r.losers))
    r.undo_applied
    (String.concat "; " (List.map fst r.jobs))
