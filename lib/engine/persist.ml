open Nbsc_wal
module Obs = Nbsc_obs.Obs

type error = Nbsc_error.t

type t = {
  dir : string;
  mutable pdb : Db.t;
  mutable out : out_channel;
  buf : Buffer.t;  (* framed lines awaiting the group-commit barrier *)
  rbuf : Buffer.t;  (* one record being encoded (reused per append) *)
  fbuf : Buffer.t;  (* the framed form of rbuf (reused per append) *)
  scratch : Buffer.t;  (* composite scratch for [Log_record.encode_into] *)
  mutable report : Recovery.report option;
  mutable closed : bool;
}

let snapshot_path = Disk_format.snapshot_path
let wal_path = Disk_format.wal_path

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let io f = try Ok (f ()) with Sys_error m -> Error (`Io m)

(* Deterministic jitter source for transient-EIO retries: the engine
   has no ambient randomness (fixed-seed runs must stay byte-identical)
   and the jitter only needs to decorrelate, not be unpredictable. *)
let retry_rng = Random.State.make [| 0xC5C32; 0x10 |]

let on_io_retry ~attempt:_ ~delay:_ =
  Obs.Counter.incr (Disk_format.io_retries ())

(* Flip one byte in the middle of a framed line — the [Bit_flip] fault
   effect. Applied {e after} the CRC was computed, exactly like media
   bit rot: the damage is silent at write time and only checksum
   verification (reopen, scrub) can catch it. *)
let flip_byte_of_string s =
  let b = Bytes.of_string s in
  let i = Bytes.length b / 2 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
  Bytes.unsafe_to_string b

let flip_byte_of_buffer buf =
  let s = flip_byte_of_string (Buffer.contents buf) in
  Buffer.clear buf;
  Buffer.add_string buf s

(* Atomic file replacement: write a temp file in the same directory,
   then rename over the destination. A crash at any point leaves either
   the complete old file or the complete new file — never a torn mix.
   [Fault.Injected] deliberately escapes [io]'s Sys_error net: a
   simulated crash propagates to the harness, which then reopens the
   directory. [Fault.Io_injected] is handled here: transient EIO
   retries the whole write (fresh temp file), ENOSPC becomes a typed
   [`Disk_full], persistent EIO a [`Io]. *)
let write_lines_atomic ?fault_write ?fault_rename ~magic ~with_trailer path
    lines =
  let run () =
    io (fun () ->
        let tmp = path ^ ".tmp" in
        let corrupt_at = ref (-1) in
        (match fault_write with
         | Some site ->
           Fault.file_write site
             ~flip:(fun () -> corrupt_at := List.length lines / 2)
         | None -> ());
        let oc = open_out tmp in
        output_string oc magic;
        output_char oc '\n';
        List.iteri
          (fun i l ->
             let framed = Disk_format.frame l in
             let framed =
               if i = !corrupt_at then flip_byte_of_string framed else framed
             in
             output_string oc framed;
             output_char oc '\n')
          lines;
        if with_trailer then begin
          output_string oc (Disk_format.frame (Disk_format.trailer (List.length lines)));
          output_char oc '\n'
        end;
        close_out oc;
        (match fault_rename with Some site -> Fault.hit site | None -> ());
        Sys.rename tmp path)
  in
  match Io_retry.with_transient_retries ~rng:retry_rng ~on_retry:on_io_retry run with
  | r -> r
  | exception Fault.Io_injected { errno = Fault.ENOSPC; site; _ } ->
    Obs.Counter.incr (Disk_format.disk_full_stalls ());
    Error
      (`Disk_full (Printf.sprintf "no space writing %s (site %s)" path site))
  | exception Fault.Io_injected { errno = Fault.EIO; site; _ } ->
    Error (`Io (Printf.sprintf "persistent I/O error writing %s (site %s)" path site))

(* Rewrite a file keeping already-framed lines verbatim (the torn-tail
   trim): no re-framing, no fault sites beyond the caller's. *)
let write_raw_atomic path raw_lines =
  io (fun () ->
      let tmp = path ^ ".tmp" in
      let oc = open_out tmp in
      List.iter
        (fun l ->
           output_string oc l;
           output_char oc '\n')
        raw_lines;
      close_out oc;
      Sys.rename tmp path)

let read_lines path =
  io (fun () ->
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      go [])

(* The WAL is appended in place (not rename-swapped), so a crash can
   tear its final line. Only an {e unterminated} final line is the
   signature of a torn append — drop it; newline-terminated garbage is
   real corruption and must still be reported as such (the per-line
   checksum downstream makes that detection total). Returns the
   surviving raw lines (header included) and whether a torn tail was
   dropped (the caller must then trim the file, or the next append
   would fuse with the torn prefix into a newline-terminated garbage
   line). *)
let read_wal_lines path =
  io (fun () ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      if String.equal s "" then ([], false)
      else begin
        let terminated = s.[String.length s - 1] = '\n' in
        let body =
          if terminated then String.sub s 0 (String.length s - 1) else s
        in
        let lines = String.split_on_char '\n' body in
        if terminated then (lines, false)
        else
          match List.rev lines with
          | _torn :: rest -> (List.rev rest, true)
          | [] -> ([], true)
      end)

(* Physical write of the buffered sink lines — the durability barrier's
   bottom half, and the one place the engine meets a failing disk.
   Transient EIO retries with jittered backoff ([storage.io_retries]);
   ENOSPC keeps the bytes buffered and puts the manager into degraded
   mode ([storage.disk_full_stalls]) instead of failing the caller —
   the buffered suffix only ever holds records not yet promised
   durable, and the refusal of further writes keeps it that way. Any
   successful physical append clears the degraded flag: recovery from
   a transient full disk is automatic. *)
let flush_buf t =
  let mgr = Db.manager t.pdb in
  if Buffer.length t.buf > 0 || Nbsc_txn.Manager.disk_full mgr then begin
    let attempt () =
      Fault.io "wal_append";
      if Buffer.length t.buf > 0 then begin
        Buffer.output_buffer t.out t.buf;
        Buffer.clear t.buf;
        flush t.out
      end
    in
    match
      Io_retry.with_transient_retries ~rng:retry_rng ~on_retry:on_io_retry
        attempt
    with
    | () ->
      if Nbsc_txn.Manager.disk_full mgr then
        Nbsc_txn.Manager.clear_disk_full mgr
    | exception Fault.Io_injected { errno = Fault.ENOSPC; _ } ->
      if not (Nbsc_txn.Manager.disk_full mgr) then begin
        Obs.Counter.incr (Disk_format.disk_full_stalls ());
        Nbsc_txn.Manager.set_disk_full mgr
      end
    | exception Fault.Io_injected { errno = Fault.EIO; site; _ } ->
      Nbsc_error.fail
        (`Io (Printf.sprintf "wal append failed with persistent EIO at %s" site))
  end

(* The sink buffers framed lines; they reach disk at the group-commit
   barrier ([Log.sync] -> the syncer below), so a transaction's worth of
   appends costs one write+flush instead of one per record. Records of
   the system transaction (fuzzy marks, job state, checkpoint marks)
   write through immediately: they are rare, and recovery anchors on
   them being durable independently of any commit. The on-disk log is
   always a strict prefix of the in-memory log, and the buffered suffix
   only ever holds records of transactions that have not synced — a
   crash losing it replays idempotently. Each line is framed
   ([Disk_format.frame_into]: CRC-32 over the encoded payload) straight
   out of the reusable buffers — no intermediate strings. *)
let attach_sink t =
  let log = Db.log t.pdb in
  Log.set_sink log
    (Some
       (fun record ->
          Buffer.clear t.rbuf;
          Log_record.encode_into ~scratch:t.scratch t.rbuf record;
          Buffer.clear t.fbuf;
          Disk_format.frame_into t.fbuf t.rbuf;
          (* A torn append first makes the buffered complete lines
             durable, then leaves a prefix of this framed line,
             unterminated — exactly what [read_wal_lines] tolerates on
             reopen. A bit flip damages the framed bytes after their
             CRC was computed and continues silently. *)
          Fault.write_record "wal_append"
            ~partial:(fun () ->
                flush_buf t;
                output_string t.out
                  (Buffer.sub t.fbuf 0 (Buffer.length t.fbuf / 2));
                flush t.out)
            ~flip:(fun () -> flip_byte_of_buffer t.fbuf);
          Buffer.add_buffer t.buf t.fbuf;
          Buffer.add_char t.buf '\n';
          if record.Log_record.txn = Log_record.system_txn then flush_buf t));
  Log.set_syncer log (Some (fun () -> flush_buf t))

(* Open the WAL append channel; a fresh (empty) file gets its version
   header immediately, flushed, so even a crash right after creation
   leaves a well-formed file. *)
let open_wal_channel path =
  io (fun () ->
      let out = open_out_gen [ Open_append; Open_creat ] 0o644 path in
      if out_channel_length out = 0 then begin
        output_string out Disk_format.wal_magic;
        output_char out '\n';
        flush out
      end;
      out)

let make_t ~dir ~pdb ~out ~report =
  { dir; pdb; out; buf = Buffer.create 4096; rbuf = Buffer.create 256;
    fbuf = Buffer.create 256; scratch = Buffer.create 256; report;
    closed = false }

let create_dir ~dir =
  let* () =
    io (fun () -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
  in
  if Sys.file_exists (snapshot_path dir) then
    Error (`Io (dir ^ " already holds a database"))
  else
    let pdb = Db.create () in
    let* () =
      match Snapshot.save pdb with
      | Ok lines ->
        write_lines_atomic ~fault_write:"snapshot_write"
          ~fault_rename:"snapshot_rename" ~magic:Disk_format.snapshot_magic
          ~with_trailer:true (snapshot_path dir) lines
      | Error e -> Error e
    in
    let* out = open_wal_channel (wal_path dir) in
    let t = make_t ~dir ~pdb ~out ~report:None in
    attach_sink t;
    Nbsc_txn.Manager.set_durable_floor (Db.manager pdb) (Log.base (Db.log pdb));
    Ok t

(* Verify and strip the framing of a file's payload lines, numbering
   from 2 (line 1 is the header). *)
let unframe_lines ~path raw_lines =
  let rec go acc line = function
    | [] -> Ok (List.rev acc)
    | raw :: rest ->
      let* payload = Disk_format.unframe ~path ~line raw in
      go ((line, payload) :: acc) (line + 1) rest
  in
  go [] 2 raw_lines

(* Snapshot files are rename-swapped, i.e. written in one piece — a
   complete one always ends with its trailer. A snapshot cut at an
   exact line boundary (every surviving line still checksums) is the
   one corruption per-line CRCs cannot see; the trailer's line count
   closes that hole. *)
let check_snapshot_trailer ~path payloads =
  match List.rev payloads with
  | (line, last) :: rest_rev ->
    (match Disk_format.trailer_count last with
     | Some n ->
       if n = List.length rest_rev then
         Ok (List.map snd (List.rev rest_rev))
       else
         Error
           (Nbsc_error.corrupt ~path ~line
              (Printf.sprintf
                 "snapshot trailer records %d payload lines but %d are \
                  present — file truncated or spliced"
                 n (List.length rest_rev)))
     | None ->
       Error
         (Nbsc_error.corrupt ~path ~line
            "snapshot trailer missing — file truncated at a line boundary?"))
  | [] ->
    Error (Nbsc_error.corrupt ~path "snapshot holds no lines beyond its header")

let load_snapshot ~dir =
  let path = snapshot_path dir in
  let* raw = read_lines path in
  let* () =
    Disk_format.check_header ~magic:Disk_format.snapshot_magic ~path
      (match raw with [] -> None | l :: _ -> Some l)
  in
  let* framed = match raw with [] -> Ok [] | _ :: rest -> Ok rest in
  let* payloads = unframe_lines ~path framed in
  let* lines = check_snapshot_trailer ~path payloads in
  (* Crash-during-recovery site: before the decoded snapshot state is
     built. Nothing was written yet, so a crash here is trivially
     idempotent — the matrix proves it. *)
  Fault.hit "snapshot_load";
  Snapshot.load lines

(* Decode the framed WAL lines into records, with file/line context on
   every failure. *)
let decode_wal_lines ~path framed =
  let* numbered = unframe_lines ~path framed in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (line, payload) :: rest ->
      (match Log_record.decode payload with
       | r -> go (r :: acc) rest
       | exception Failure m -> Error (Nbsc_error.corrupt ~path ~line m))
  in
  go [] numbered

(* A crash between writing a temp file and renaming it over its
   destination strands a [*.tmp]; it carries no durable state (the
   rename is the publish point), so reopening deletes any found. *)
let remove_orphan_tmps dir =
  io (fun () ->
      Array.iter
        (fun f ->
           if Filename.check_suffix f ".tmp" then
             Sys.remove (Filename.concat dir f))
        (Sys.readdir dir))

let open_dir ~dir =
  let* () = remove_orphan_tmps dir in
  let* pdb = load_snapshot ~dir in
  let wpath = wal_path dir in
  let* raw_wal, torn =
    if Sys.file_exists wpath then read_wal_lines wpath else Ok ([], false)
  in
  let* () =
    if Sys.file_exists wpath then
      Disk_format.check_header ~magic:Disk_format.wal_magic ~path:wpath
        (match raw_wal with [] -> None | l :: _ -> Some l)
    else Ok ()
  in
  (* Physically trim a torn tail before the append channel reopens.
     Crash-during-recovery site: the trim is atomic, so a crash before
     or after it reopens into the same decision. *)
  let* () =
    if torn then begin
      Fault.hit "recovery_truncate";
      write_raw_atomic wpath raw_wal
    end
    else Ok ()
  in
  let framed_wal = match raw_wal with [] -> [] | _ :: rest -> rest in
  (* Group-commit recovery invariant: the snapshot must not reflect an
     LSN the durable log does not cover. The only way to violate it is
     a checkpoint that published its snapshot while acked-but-unflushed
     commit records sat in the sink buffer and were then lost with a
     crash — the checkpoint-side [flush_commits] exists precisely to
     rule that out, and recovery asserts it held. Checked against the
     {e snapshot-loaded} state, before replay: replay only applies
     record LSNs the log covers, but the loser rollback stamps its
     inverse operations one past the head, so the post-recovery state
     may legitimately exceed it. (An empty retained WAL is trivially
     covered — the snapshot's own head anchors the log.) *)
  let check_covered ~durable_head =
    List.fold_left
      (fun acc tbl ->
         let* () = acc in
         let m = Nbsc_storage.Table.max_lsn tbl in
         if Lsn.(m > durable_head) then
           Error
             (Nbsc_error.corrupt ~path:wpath ~lsn:(Lsn.to_int m)
                (Printf.sprintf
                   "table %s reflects lsn %s beyond the durable log head %s: \
                    a group-commit suffix acked before the snapshot was lost"
                   (Nbsc_storage.Table.name tbl) (Lsn.to_string m)
                   (Lsn.to_string durable_head)))
         else Ok ())
      (Ok ())
      (Nbsc_storage.Catalog.tables (Db.catalog pdb))
  in
  (* Crash recovery over the retained log suffix. The parsed WAL
     becomes the {e live} in-memory log: a resumed transformation's
     propagator must be able to re-read the retained records, and new
     appends must continue the same LSN sequence. *)
  (* Crash-during-recovery site: snapshot loaded, before redo/undo
     mutate the freshly loaded catalog (consulted even when the
     retained log is empty — the replay step still happens). Replay is
     idempotent, so a second crash mid-recovery reopens into the same
     replay. *)
  Fault.hit "recovery_replay";
  let* report, log =
    match framed_wal with
    | [] -> Ok (None, Db.log pdb) (* empty log based at the snapshot head *)
    | framed ->
      (* The string codec and checksum verification run here, at the
         replay boundary; the log itself only ever holds structured
         records. *)
      let* records = decode_wal_lines ~path:wpath framed in
      (match Log.of_records records with
       | wal ->
         let* () = check_covered ~durable_head:(Log.head wal) in
         Ok (Some (Recovery.replay_into (Db.catalog pdb) wal), wal)
       | exception Failure m -> Error (Nbsc_error.corrupt ~path:wpath m))
  in
  let pdb = Db.of_parts (Db.catalog pdb) ~log in
  (* Retained records carry transaction ids from the previous life;
     fresh ids must not collide with them (a resumed propagator skips
     loser ids, and recovery groups records by id). *)
  let max_txn = ref Log_record.system_txn in
  Log.iter log (fun r -> max_txn := Stdlib.max !max_txn r.Log_record.txn);
  Nbsc_txn.Manager.bump_txn_ids (Db.manager pdb) ~above:!max_txn;
  let* out = open_wal_channel wpath in
  let t = make_t ~dir ~pdb ~out ~report in
  attach_sink t;
  (* Everything below the retained WAL's first record is durable in the
     snapshot; the retained suffix itself must stay in memory until the
     jobs it carries are resumed (their propagators then pin their own
     positions) and a new checkpoint advances the floor. *)
  Nbsc_txn.Manager.set_durable_floor (Db.manager pdb) (Log.base log);
  Ok t

let db t = t.pdb

let checkpoint t =
  let log = Db.log t.pdb in
  (* Group-commit barrier first: the snapshot below reflects every
     acknowledged commit, including those whose records still sit in
     the buffered sink. Publishing it without flushing them would let a
     crash at either snapshot fault site keep the {e old} snapshot with
     an on-disk WAL missing the acked suffix — a durability violation
     the ack already promised away. *)
  Nbsc_txn.Manager.flush_commits (Db.manager t.pdb);
  if Nbsc_txn.Manager.disk_full (Db.manager t.pdb) then
    (* The barrier could not reach disk: publishing a snapshot that
       reflects unflushed commits would violate the coverage invariant
       recovery checks. Refuse; the checkpoint can rerun once space
       returns. *)
    Error (`Disk_full "checkpoint refused: the WAL flush found no space")
  else begin
    (* The snapshot's coverage point: everything at or below this LSN is
       reflected in the snapshot once it publishes (the [Job_state]
       records appended below land above it). Becomes the manager's new
       durable floor for in-memory truncation. *)
    let snap_head = Log.head log in
    let persists =
      List.map (fun (name, thunk) -> (name, thunk ())) (Db.job_persists t.pdb)
    in
    match Snapshot.save t.pdb with
    | Error e -> Error e
    | Ok lines ->
      (* Snapshot first, WAL second: a crash between the two leaves the
         new snapshot with the old (longer) WAL, which replays
         idempotently. The reverse order could pair a truncated WAL with
         the old snapshot and lose records. *)
      let* () =
        write_lines_atomic ~fault_write:"snapshot_write"
          ~fault_rename:"snapshot_rename" ~magic:Disk_format.snapshot_magic
          ~with_trailer:true (snapshot_path t.dir) lines
      in
      (* Only now re-emit every persistable job's resume state. The
         ordering is load-bearing: a [Job_state] on disk must imply the
         published snapshot already reflects the job's work up to that
         position — resuming from a position {e ahead} of the targets
         would silently skip log records. The other direction is safe: a
         crash leaving an older [Job_state] with a newer snapshot merely
         replays an overlap, and replay is idempotent. The records land
         in the current WAL via the sink and — having LSNs above every
         low-water mark — survive the rewrite below. *)
      List.iter
        (fun (name, (p : Db.job_persist)) ->
           ignore
             (Log.append log ~txn:Log_record.system_txn ~prev_lsn:Lsn.zero
                (Log_record.Job_state { job = name; state = p.Db.job_state })))
        persists;
      (* Truncate the WAL down to the suffix in-flight jobs still need:
         every record at or above the oldest propagator position (low
         watermark — the {e next} record that job will read, so the record
         at the watermark itself must survive). With no persistable jobs
         the WAL empties, as a classical checkpoint would. *)
      let low =
        List.fold_left
          (fun acc (_, (p : Db.job_persist)) ->
             if Lsn.(p.Db.low_water < acc) then p.Db.low_water else acc)
          (Lsn.next (Log.head log)) persists
      in
      let retained = ref [] in
      Log.iter log (fun r ->
          if Lsn.(r.Log_record.lsn >= low) then
            retained := Log_record.encode r :: !retained);
      let retained = List.rev !retained in
      (* Buffered lines need no flush: every record they hold is either
         reflected in the snapshot just published or rewritten below from
         the in-memory retained suffix. *)
      Buffer.clear t.buf;
      let* () = io (fun () -> close_out t.out) in
      let* () =
        write_lines_atomic ~fault_write:"wal_rewrite" ~magic:Disk_format.wal_magic
          ~with_trailer:false (wal_path t.dir) retained
      in
      let* out = open_wal_channel (wal_path t.dir) in
      t.out <- out;
      attach_sink t;
      (* Mirror the on-disk trim in memory: with the snapshot durable,
         records at or below its head are only needed by whoever pinned
         them (active transactions cannot exist here — [Snapshot.save]
         refuses them — but propagators can). *)
      let mgr = Db.manager t.pdb in
      Nbsc_txn.Manager.set_durable_floor mgr snap_head;
      ignore (Nbsc_txn.Manager.truncate_wal mgr);
      Ok ()
  end

let crash t =
  if not t.closed then begin
    t.closed <- true;
    let log = Db.log t.pdb in
    Log.set_sink log None;
    Log.set_syncer log None;
    (* No flush: the buffered suffix is lost, which is the point — the
       on-disk log ends at the last group-commit barrier (or torn tail,
       injected explicitly). *)
    Buffer.clear t.buf;
    close_out_noerr t.out
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    let log = Db.log t.pdb in
    Log.set_sink log None;
    Log.set_syncer log None;
    flush_buf t;
    close_out t.out
  end

let last_recovery t = t.report

let pending_jobs t =
  match t.report with Some r -> r.Recovery.jobs | None -> []

let pp_error = Nbsc_error.pp
