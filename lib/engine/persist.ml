open Nbsc_wal

type error = Nbsc_error.t

type t = {
  dir : string;
  mutable pdb : Db.t;
  mutable out : out_channel;
  buf : Buffer.t;  (* encoded lines awaiting the group-commit barrier *)
  rbuf : Buffer.t;  (* one record being encoded (reused per append) *)
  scratch : Buffer.t;  (* composite scratch for [Log_record.encode_into] *)
  mutable report : Recovery.report option;
  mutable closed : bool;
}

let snapshot_path dir = Filename.concat dir "snapshot.nbsc"
let wal_path dir = Filename.concat dir "wal.nbsc"

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let io f = try Ok (f ()) with Sys_error m -> Error (`Io m)

(* Atomic file replacement: write a temp file in the same directory,
   then rename over the destination. A crash at any point leaves either
   the complete old file or the complete new file — never a torn mix.
   [Fault.Injected] deliberately escapes [io]'s Sys_error net: a
   simulated crash propagates to the harness, which then reopens the
   directory. *)
let write_lines_atomic ?fault_write ?fault_rename path lines =
  io (fun () ->
      let tmp = path ^ ".tmp" in
      (match fault_write with Some site -> Fault.hit site | None -> ());
      let oc = open_out tmp in
      List.iter
        (fun l ->
           output_string oc l;
           output_char oc '\n')
        lines;
      close_out oc;
      (match fault_rename with Some site -> Fault.hit site | None -> ());
      Sys.rename tmp path)

let read_lines path =
  io (fun () ->
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
          close_in ic;
          List.rev acc
      in
      go [])

(* The WAL is appended in place (not rename-swapped), so a crash can
   tear its final line. Only an {e unterminated} final line is the
   signature of a torn append — drop it; newline-terminated garbage is
   real corruption and must still be reported as such. Returns the
   surviving lines and whether a torn tail was dropped (the caller must
   then trim the file, or the next append would fuse with the torn
   prefix into a newline-terminated garbage line). *)
let read_wal_lines path =
  io (fun () ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      if String.equal s "" then ([], false)
      else begin
        let terminated = s.[String.length s - 1] = '\n' in
        let body =
          if terminated then String.sub s 0 (String.length s - 1) else s
        in
        let lines = String.split_on_char '\n' body in
        if terminated then (lines, false)
        else
          match List.rev lines with
          | _torn :: rest -> (List.rev rest, true)
          | [] -> ([], true)
      end)

(* The sink buffers encoded lines; they reach disk at the group-commit
   barrier ([Log.sync] -> the syncer below), so a transaction's worth of
   appends costs one write+flush instead of one per record. Records of
   the system transaction (fuzzy marks, job state, checkpoint marks)
   write through immediately: they are rare, and recovery anchors on
   them being durable independently of any commit. The on-disk log is
   always a strict prefix of the in-memory log, and the buffered suffix
   only ever holds records of transactions that have not synced — a
   crash losing it replays idempotently. *)
let flush_buf t =
  if Buffer.length t.buf > 0 then begin
    Buffer.output_buffer t.out t.buf;
    Buffer.clear t.buf;
    flush t.out
  end

let attach_sink t =
  let log = Db.log t.pdb in
  Log.set_sink log
    (Some
       (fun record ->
          Buffer.clear t.rbuf;
          Log_record.encode_into ~scratch:t.scratch t.rbuf record;
          (* A torn append first makes the buffered complete lines
             durable, then leaves a prefix of this line, unterminated —
             exactly what [read_wal_lines] tolerates on reopen. *)
          Fault.torn "wal_append" ~partial:(fun () ->
              flush_buf t;
              output_string t.out (Buffer.sub t.rbuf 0 (Buffer.length t.rbuf / 2));
              flush t.out);
          Buffer.add_buffer t.buf t.rbuf;
          Buffer.add_char t.buf '\n';
          if record.Log_record.txn = Log_record.system_txn then flush_buf t));
  Log.set_syncer log (Some (fun () -> flush_buf t))

let create_dir ~dir =
  let* () =
    io (fun () -> if not (Sys.file_exists dir) then Sys.mkdir dir 0o755)
  in
  if Sys.file_exists (snapshot_path dir) then
    Error (`Io (dir ^ " already holds a database"))
  else
    let pdb = Db.create () in
    let* () =
      match Snapshot.save pdb with
      | Ok lines ->
        write_lines_atomic ~fault_write:"snapshot_write"
          ~fault_rename:"snapshot_rename" (snapshot_path dir) lines
      | Error e -> Error e
    in
    let* out =
      io (fun () ->
          open_out_gen [ Open_append; Open_creat ] 0o644 (wal_path dir))
    in
    let t =
      { dir; pdb; out; buf = Buffer.create 4096; rbuf = Buffer.create 256;
        scratch = Buffer.create 256; report = None; closed = false }
    in
    attach_sink t;
    Nbsc_txn.Manager.set_durable_floor (Db.manager pdb) (Log.base (Db.log pdb));
    Ok t

let open_dir ~dir =
  let* snapshot_lines = read_lines (snapshot_path dir) in
  let* pdb =
    match Snapshot.load snapshot_lines with
    | Ok db -> Ok db
    | Error e -> Error e
  in
  let* wal_lines, torn =
    if Sys.file_exists (wal_path dir) then read_wal_lines (wal_path dir)
    else Ok ([], false)
  in
  (* Physically trim a torn tail before the append channel reopens. *)
  let* () =
    if torn then write_lines_atomic (wal_path dir) wal_lines else Ok ()
  in
  (* Group-commit recovery invariant: the snapshot must not reflect an
     LSN the durable log does not cover. The only way to violate it is
     a checkpoint that published its snapshot while acked-but-unflushed
     commit records sat in the sink buffer and were then lost with a
     crash — the checkpoint-side [flush_commits] exists precisely to
     rule that out, and recovery asserts it held. Checked against the
     {e snapshot-loaded} state, before replay: replay only applies
     record LSNs the log covers, but the loser rollback stamps its
     inverse operations one past the head, so the post-recovery state
     may legitimately exceed it. (An empty retained WAL is trivially
     covered — the snapshot's own head anchors the log.) *)
  let check_covered ~durable_head =
    List.fold_left
      (fun acc tbl ->
         let* () = acc in
         let m = Nbsc_storage.Table.max_lsn tbl in
         if Lsn.(m > durable_head) then
           Error
             (`Corrupt
                (Printf.sprintf
                   "table %s reflects lsn %s beyond the durable log head %s: \
                    a group-commit suffix acked before the snapshot was lost"
                   (Nbsc_storage.Table.name tbl) (Lsn.to_string m)
                   (Lsn.to_string durable_head)))
         else Ok ())
      (Ok ())
      (Nbsc_storage.Catalog.tables (Db.catalog pdb))
  in
  (* Crash recovery over the retained log suffix. The parsed WAL
     becomes the {e live} in-memory log: a resumed transformation's
     propagator must be able to re-read the retained records, and new
     appends must continue the same LSN sequence. *)
  let* report, log =
    match wal_lines with
    | [] -> Ok (None, Db.log pdb) (* empty log based at the snapshot head *)
    | lines ->
      (* The string codec is applied here, at the replay boundary; the
         log itself only ever holds structured records. *)
      (match Log.of_records (List.map Log_record.decode lines) with
       | wal ->
         let* () = check_covered ~durable_head:(Log.head wal) in
         Ok (Some (Recovery.replay_into (Db.catalog pdb) wal), wal)
       | exception Failure m -> Error (`Corrupt m))
  in
  let pdb = Db.of_parts (Db.catalog pdb) ~log in
  (* Retained records carry transaction ids from the previous life;
     fresh ids must not collide with them (a resumed propagator skips
     loser ids, and recovery groups records by id). *)
  let max_txn = ref Log_record.system_txn in
  Log.iter log (fun r -> max_txn := Stdlib.max !max_txn r.Log_record.txn);
  Nbsc_txn.Manager.bump_txn_ids (Db.manager pdb) ~above:!max_txn;
  let* out =
    io (fun () ->
        open_out_gen [ Open_append; Open_creat ] 0o644 (wal_path dir))
  in
  let t =
    { dir; pdb; out; buf = Buffer.create 4096; rbuf = Buffer.create 256;
      scratch = Buffer.create 256; report; closed = false }
  in
  attach_sink t;
  (* Everything below the retained WAL's first record is durable in the
     snapshot; the retained suffix itself must stay in memory until the
     jobs it carries are resumed (their propagators then pin their own
     positions) and a new checkpoint advances the floor. *)
  Nbsc_txn.Manager.set_durable_floor (Db.manager pdb) (Log.base log);
  Ok t

let db t = t.pdb

let checkpoint t =
  let log = Db.log t.pdb in
  (* Group-commit barrier first: the snapshot below reflects every
     acknowledged commit, including those whose records still sit in
     the buffered sink. Publishing it without flushing them would let a
     crash at either snapshot fault site keep the {e old} snapshot with
     an on-disk WAL missing the acked suffix — a durability violation
     the ack already promised away. *)
  Nbsc_txn.Manager.flush_commits (Db.manager t.pdb);
  (* The snapshot's coverage point: everything at or below this LSN is
     reflected in the snapshot once it publishes (the [Job_state]
     records appended below land above it). Becomes the manager's new
     durable floor for in-memory truncation. *)
  let snap_head = Log.head log in
  let persists =
    List.map (fun (name, thunk) -> (name, thunk ())) (Db.job_persists t.pdb)
  in
  match Snapshot.save t.pdb with
  | Error e -> Error e
  | Ok lines ->
    (* Snapshot first, WAL second: a crash between the two leaves the
       new snapshot with the old (longer) WAL, which replays
       idempotently. The reverse order could pair a truncated WAL with
       the old snapshot and lose records. *)
    let* () =
      write_lines_atomic ~fault_write:"snapshot_write"
        ~fault_rename:"snapshot_rename" (snapshot_path t.dir) lines
    in
    (* Only now re-emit every persistable job's resume state. The
       ordering is load-bearing: a [Job_state] on disk must imply the
       published snapshot already reflects the job's work up to that
       position — resuming from a position {e ahead} of the targets
       would silently skip log records. The other direction is safe: a
       crash leaving an older [Job_state] with a newer snapshot merely
       replays an overlap, and replay is idempotent. The records land
       in the current WAL via the sink and — having LSNs above every
       low-water mark — survive the rewrite below. *)
    List.iter
      (fun (name, (p : Db.job_persist)) ->
         ignore
           (Log.append log ~txn:Log_record.system_txn ~prev_lsn:Lsn.zero
              (Log_record.Job_state { job = name; state = p.Db.job_state })))
      persists;
    (* Truncate the WAL down to the suffix in-flight jobs still need:
       every record at or above the oldest propagator position (low
       watermark — the {e next} record that job will read, so the record
       at the watermark itself must survive). With no persistable jobs
       the WAL empties, as a classical checkpoint would. *)
    let low =
      List.fold_left
        (fun acc (_, (p : Db.job_persist)) ->
           if Lsn.(p.Db.low_water < acc) then p.Db.low_water else acc)
        (Lsn.next (Log.head log)) persists
    in
    let retained = ref [] in
    Log.iter log (fun r ->
        if Lsn.(r.Log_record.lsn >= low) then
          retained := Log_record.encode r :: !retained);
    let retained = List.rev !retained in
    (* Buffered lines need no flush: every record they hold is either
       reflected in the snapshot just published or rewritten below from
       the in-memory retained suffix. *)
    Buffer.clear t.buf;
    let* () = io (fun () -> close_out t.out) in
    let* () =
      write_lines_atomic ~fault_rename:"wal_rewrite" (wal_path t.dir) retained
    in
    let* out =
      io (fun () ->
          open_out_gen [ Open_append; Open_creat ] 0o644 (wal_path t.dir))
    in
    t.out <- out;
    attach_sink t;
    (* Mirror the on-disk trim in memory: with the snapshot durable,
       records at or below its head are only needed by whoever pinned
       them (active transactions cannot exist here — [Snapshot.save]
       refuses them — but propagators can). *)
    let mgr = Db.manager t.pdb in
    Nbsc_txn.Manager.set_durable_floor mgr snap_head;
    ignore (Nbsc_txn.Manager.truncate_wal mgr);
    Ok ()

let crash t =
  if not t.closed then begin
    t.closed <- true;
    let log = Db.log t.pdb in
    Log.set_sink log None;
    Log.set_syncer log None;
    (* No flush: the buffered suffix is lost, which is the point — the
       on-disk log ends at the last group-commit barrier (or torn tail,
       injected explicitly). *)
    Buffer.clear t.buf;
    close_out_noerr t.out
  end

let close t =
  if not t.closed then begin
    t.closed <- true;
    let log = Db.log t.pdb in
    Log.set_sink log None;
    Log.set_syncer log None;
    flush_buf t;
    close_out t.out
  end

let last_recovery t = t.report

let pending_jobs t =
  match t.report with Some r -> r.Recovery.jobs | None -> []

let pp_error = Nbsc_error.pp
