(** Durability: a database directory with a snapshot file and a
    continuously-appended write-ahead-log file.

    Layout (on-disk format v2 — see {!Disk_format}):
    {v
      <dir>/snapshot.nbsc   line 1 the format magic; then one
                            CRC-framed snapshot line each; last a
                            framed @end:<count> trailer
      <dir>/wal.nbsc        line 1 the format magic; then one
                            CRC-framed log record per line, appended
                            and flushed synchronously on every append
    v}

    {!open_dir} sweeps orphaned [*.tmp] files, verifies both files'
    headers and per-line checksums, restores the snapshot, replays the
    WAL (redo of completed work, rollback of transactions that were in
    flight at the crash), and re-attaches the WAL sink so new work
    keeps being journaled. {!checkpoint} rewrites the snapshot and
    truncates the WAL down to the suffix still needed by in-flight
    schema changes.

    Crash-safety protocol: both files are replaced atomically (temp
    file + [Sys.rename]); the WAL alone is appended in place, so only
    its final line can be torn by a crash — an unterminated final line
    is dropped and physically trimmed on reopen, while
    newline-terminated garbage, a checksum failure, or a missing or
    miscounting snapshot trailer is reported as [`Corrupt] with
    file/line/checksum context. Fault injection ({!Fault}) is wired
    into every durability step: sites [wal_append], [snapshot_write],
    [snapshot_rename] and [wal_rewrite] fire on the write paths, and
    [snapshot_load], [recovery_truncate] and [recovery_replay] inside
    {!open_dir} itself (crash-during-recovery). Transient [EIO] is
    retried with bounded jittered backoff ({!Io_retry}); [ENOSPC]
    puts the transaction manager into degraded mode
    ({!Nbsc_txn.Manager.disk_full}) instead of failing the engine. *)

(** {b DDL durability caveat}: the WAL journals data operations only
    (the paper's log carries no DDL either); table definitions are
    persisted by snapshots. Run {!checkpoint} after creating or
    dropping tables, or records written to a table created since the
    last checkpoint cannot be replayed after a crash. *)

type t

type error = Nbsc_error.t
(** The durability layer produces [`Io], [`Corrupt], [`Disk_full] and
    [`Active_transactions]; the unified type means callers render any
    of it with {!Nbsc_error.to_string} and need no per-module
    plumbing. *)

val create_dir : dir:string -> (t, error) result
(** Initialize an empty database directory (creates it if missing;
    refuses a directory that already holds a database). *)

val open_dir : dir:string -> (t, error) result
(** Open an existing directory, running crash recovery if the WAL holds
    unfinished transactions. The parsed WAL becomes the live in-memory
    log (fresh appends continue its LSN sequence), so a resumed
    transformation's propagator can re-read the retained records.
    Fresh transaction ids are bumped above every id the retained WAL
    mentions. *)

val db : t -> Db.t

val checkpoint : t -> (unit, error) result
(** Rewrite the snapshot at the current state and truncate the WAL.
    Requires no active transactions (sharp, like {!Snapshot.save}).

    Every persistable background job ({!Db.register_job}'s [persist])
    first gets a fresh [Job_state] record appended, then the WAL is
    truncated only down to the oldest job's [low_water] position — the
    retained suffix plus the snapshot is exactly what {!open_dir} needs
    to rebuild and resume the jobs. With no persistable jobs the WAL
    empties, as a classical checkpoint would. *)

val crash : t -> unit
(** Simulate a process crash: detach the WAL sink and drop the channel
    without flushing. The in-memory database must be discarded; the
    only legal continuation is {!open_dir} on the same directory. Used
    by the fault-injection harness after catching {!Fault.Injected}. *)

val close : t -> unit
(** Flush and close the WAL channel. The [t] must not be used after. *)

val last_recovery : t -> Recovery.report option
(** The report from recovery at [open_dir] time, if any replay ran. *)

val pending_jobs : t -> (string * string) list
(** Background jobs that were in flight at the crash, per the recovery
    report: [(job name, opaque resume payload)] in first-seen order.
    Empty if no recovery ran. [Nbsc_core.Transform.resume] consumes
    this. *)

val pp_error : Format.formatter -> error -> unit
