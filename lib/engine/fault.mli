(** Fault injection for crash testing.

    A process-wide registry of named {e injection sites}. Durability
    code (snapshot writes, the WAL sink, checkpointing) and the
    transformation executor consult the registry at each site with
    {!hit}; when a site is armed the consultation raises {!Injected},
    simulating a crash at exactly that point. The crash-matrix suite
    iterates every site × every transformation operator and checks that
    reopening the store converges to the relational oracle.

    Two modes:
    - [Crash] — raise before the guarded effect happens (the record /
      file never reaches disk);
    - [Torn] — run a caller-supplied partial effect first (e.g. half a
      WAL line, flushed), then raise: the torn-write case the
      atomic-rename protocol and WAL-tail truncation must absorb.

    The registry is deliberately global and single-threaded, like the
    in-memory engine it tests. Production builds never arm anything,
    so the per-site cost is one hashtable lookup guarded by a single
    [enabled] flag check. *)

type mode = Crash | Torn

exception Injected of { site : string; mode : mode }
(** The simulated crash. Test drivers catch it at top level, abandon
    the in-memory database, and reopen from disk. *)

val all_sites : string list
(** The documented injection points, in rough lifecycle order:

    - ["wal_append"] — in the WAL sink, before an appended log record
      is written to the file (Torn: half the encoded line is written
      and flushed first);
    - ["snapshot_write"] — while streaming snapshot lines into the
      temporary file, before the atomic rename;
    - ["snapshot_rename"] — after the temporary snapshot is complete,
      before [Sys.rename] publishes it;
    - ["wal_rewrite"] — after a checkpoint wrote the new snapshot,
      before the retained WAL suffix atomically replaces the old file;
    - ["quantum_end"] — in the executor, after a transformation quantum
      completed;
    - ["sync_commit"] — in the executor, after routing switched to the
      targets, before finalization (source drop, job deregistration). *)

val arm : ?mode:mode -> ?after:int -> string -> unit
(** [arm site] makes the next {!hit} on [site] raise; [~after:n] lets
    [n] hits pass first. Re-arming replaces the previous setting. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm every site and zero all hit counters. *)

val obs : unit -> Nbsc_obs.Obs.Registry.t
(** The registry holding the per-site hit counters
    ([fault.hits.<site>]). Process-global, like the fault machinery
    itself; {!hits} and {!reset} read/zero through it. *)

val hit : string -> unit
(** Count a pass through [site]; raise {!Injected} if armed ([Crash]
    mode) and due. A [Torn]-armed site does not fire here — torn
    injection only makes sense where a partial effect exists, i.e. at
    {!torn} call sites. *)

val torn : string -> partial:(unit -> unit) -> unit
(** Like {!hit}, but when the site is armed in [Torn] mode and due,
    runs [partial] (the half-written effect) before raising. *)

val hits : string -> int
(** How many times [site] was consulted since the last {!reset} — the
    crash matrix dry-runs a scenario (with {!set_tracking}) to learn
    each site's hit count, then arms mid-range offsets. *)

val set_tracking : bool -> unit
(** Count hits even with nothing armed (dry runs). Off after {!reset}. *)

val enabled : unit -> bool
(** True when any site is armed or tracking is on (production guard:
    with nothing armed and tracking off, {!hit} is one flag check). *)
