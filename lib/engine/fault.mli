(** Fault injection for crash and disk-error testing.

    A process-wide registry of named {e injection sites}. Durability
    code (snapshot writes, the WAL sink, checkpointing, recovery) and
    the transformation executor consult the registry at each site; when
    a site is armed the consultation raises {!Injected} or
    {!Io_injected}, or silently damages the bytes in flight
    ([Bit_flip]). The crash-matrix suite iterates every site × every
    transformation operator and checks that reopening the store
    converges to the relational oracle; the integrity suite checks that
    damaged bytes are always detected, never trusted.

    Modes:
    - [Crash] — raise before the guarded effect happens (the record /
      file never reaches disk);
    - [Torn] — run a caller-supplied partial effect first (e.g. half a
      WAL line, flushed), then raise: the torn-write case the
      atomic-rename protocol and WAL-tail truncation must absorb;
    - [Io_error {errno; transient}] — a failing syscall at a physical
      write boundary. [EIO] with [transient = true] models a blip the
      persist layer retries with bounded jittered backoff;
      [transient = false] models a condition (dead or full disk): the
      arming {e stays armed}, firing on every consultation until
      {!disarm} — [ENOSPC] puts the transaction manager into degraded
      mode instead of failing the engine;
    - [Bit_flip] — flip one byte of the framed line {e after} its CRC
      was computed, then continue normally: silent media corruption
      that only checksum verification (reopen, [nbsc scrub]) can catch.

    The registry is deliberately global and single-threaded, like the
    in-memory engine it tests. Production builds never arm anything,
    so the per-site cost is one hashtable lookup guarded by a single
    [enabled] flag check. *)

type errno = EIO | ENOSPC

type mode =
  | Crash
  | Torn
  | Io_error of { errno : errno; transient : bool }
  | Bit_flip

exception Injected of { site : string; mode : mode }
(** The simulated crash. Test drivers catch it at top level, abandon
    the in-memory database, and reopen from disk. *)

exception Io_injected of { site : string; errno : errno; transient : bool }
(** The simulated failing syscall. Unlike {!Injected} this is {e not} a
    crash: the persist layer catches it at the write boundary and
    retries (transient [EIO]), degrades (["ENOSPC"]), or surfaces a
    typed error (persistent [EIO]). *)

val errno_to_string : errno -> string

val all_sites : string list
(** The documented injection points, in rough lifecycle order:

    - ["wal_append"] — in the WAL sink, per appended record (Torn: half
      the framed line is written and flushed first; Bit_flip: one byte
      of the framed line is damaged), and at the physical buffer flush
      ([Io_error] armings fire there, via {!io});
    - ["snapshot_write"] — while streaming snapshot lines into the
      temporary file, before the atomic rename;
    - ["snapshot_rename"] — after the temporary snapshot is complete,
      before [Sys.rename] publishes it;
    - ["wal_rewrite"] — after a checkpoint wrote the new snapshot,
      before the retained WAL suffix atomically replaces the old file;
    - ["quantum_end"] — in the executor, after a transformation quantum
      completed;
    - ["sync_commit"] — in the executor, after routing switched to the
      targets, before finalization (source drop, job deregistration);
    - ["snapshot_load"] — in [Persist.open_dir], before the snapshot
      lines are decoded (crash-during-recovery);
    - ["recovery_replay"] — in [Persist.open_dir], before the retained
      WAL replays into the loaded snapshot;
    - ["recovery_truncate"] — in [Persist.open_dir], before a torn WAL
      tail is physically trimmed. *)

val arm : ?mode:mode -> ?after:int -> string -> unit
(** [arm site] makes the next capable consultation of [site] raise (or
    flip); [~after:n] lets [n] capable consultations pass first.
    Re-arming replaces the previous setting. Every arming fires exactly
    once, except [Io_error {transient = false; _}], which keeps firing
    until {!disarm}. *)

val disarm : string -> unit

val reset : unit -> unit
(** Disarm every site and zero all hit counters. *)

val obs : unit -> Nbsc_obs.Obs.Registry.t
(** The registry holding the per-site hit counters
    ([fault.hits.<site>], [fault.io_hits.<site>]). Process-global, like
    the fault machinery itself; {!hits} and {!reset} read/zero through
    it. *)

val hit : string -> unit
(** Count a pass through [site]; fire if armed and due. [Torn] and
    [Bit_flip] armings degrade to a clean crash here — there is no byte
    stream at a plain hit point. *)

val write_record : string -> partial:(unit -> unit) -> flip:(unit -> unit) -> unit
(** The WAL sink's per-record consultation. [Crash] raises; [Torn] runs
    [partial] (the half-written line) then raises; [Bit_flip] runs
    [flip] (damage the framed bytes in place) and {e continues} —
    silent corruption. [Io_error] armings do not fire here (and their
    countdown does not advance): syscall failures belong to the
    physical write boundary, {!io}. *)

val file_write : string -> flip:(unit -> unit) -> unit
(** Consultation guarding a whole-file write (snapshot / WAL rewrite
    temp files). [Crash]/[Torn] raise (the rename never happens, so the
    old file survives intact — torn has no distinct effect under
    atomic replacement); [Bit_flip] runs [flip] and continues;
    [Io_error] raises {!Io_injected}. *)

val io : string -> unit
(** The physical write boundary consultation: fires [Io_error] armings
    only — other modes neither fire nor advance their countdown here.
    Counted separately ([fault.io_hits.<site>], {!io_hits}) so dry-run
    planning of record-level armings stays unskewed. *)

val hits : string -> int
(** How many times [site]'s record-level consultations ran since the
    last {!reset} — the crash matrix dry-runs a scenario (with
    {!set_tracking}) to learn each site's hit count, then arms
    mid-range offsets. *)

val io_hits : string -> int
(** How many times [site]'s physical write boundary was consulted. *)

val set_tracking : bool -> unit
(** Count hits even with nothing armed (dry runs). Off after {!reset}. *)

val enabled : unit -> bool
(** True when any site is armed or tracking is on (production guard:
    with nothing armed and tracking off, {!hit} is one flag check). *)
