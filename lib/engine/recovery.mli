(** ARIES-light crash recovery.

    Rebuilds database state from the log alone: analysis finds loser
    transactions, redo replays every operation in LSN order with the
    standard record-LSN idempotence check, undo rolls losers back.
    This exists (a) because the paper assumes an ARIES-style recoverable
    substrate, and (b) as the strongest possible test of the log's
    completeness: tests compare a recovered database against the live
    one after arbitrary histories.

    The log carries no DDL, so callers supply the table definitions.
    Operations on tables not (re)defined are skipped — in particular the
    framework's own writes to a transformed table are not logged, and a
    transformation interrupted by a crash is simply restarted (see
    DESIGN.md). *)

open Nbsc_value
open Nbsc_wal
open Nbsc_storage

type table_def = {
  def_name : string;
  def_schema : Schema.t;
  def_indexes : (string * string list) list;
}

val table_def :
  ?indexes:(string * string list) list -> string -> Schema.t -> table_def

type report = {
  redo_applied : int;
  redo_skipped : int;   (** ops on unknown tables *)
  losers : Log_record.txn_id list;
  undo_applied : int;
  jobs : (string * string) list;
      (** background jobs still in flight at the crash: latest
          [Job_state] payload per job name, in first-seen order, minus
          any job with a [Job_done]. The payload is opaque here; the
          transformation executor ({!Nbsc_core.Transform}) decodes it
          and resumes the job. *)
}

val recover : table_defs:table_def list -> Log.t -> Catalog.t * report
(** Fresh catalog containing the recovered tables. *)

val replay_into : Catalog.t -> Log.t -> report
(** Redo + undo into an {e existing} catalog (e.g. one restored from a
    snapshot, with the log holding only the records since). Redo uses
    the standard record-LSN idempotence check, so replaying overlapping
    history is safe. *)

val pp_report : Format.formatter -> report -> unit
