open Nbsc_storage
open Nbsc_txn
module Obs = Nbsc_obs.Obs
module Json = Nbsc_obs.Json

type job_status = [ `Running | `Done | `Failed of string ]

type job_persist = {
  job_state : string;
  low_water : Nbsc_wal.Lsn.t;
}

type job = {
  j_step : unit -> job_status;
  j_persist : (unit -> job_persist) option;
}

type t = {
  cat : Catalog.t;
  mgr : Manager.t;
  obs : Obs.Registry.t;
  mutable jobs : (string * job) list;
  mutable holders : int;
}

let create ?obs () =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let cat = Catalog.create () in
  { cat; mgr = Manager.create ~obs cat; obs; jobs = []; holders = 1_000_000_000 }

let of_parts ?obs cat ~log =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  { cat;
    mgr = Manager.create ~log ~obs cat;
    obs;
    jobs = [];
    holders = 1_000_000_000 }

(* Identities for background jobs (latch-holder and lock-hook ids, and
   the default job-name suffix). Per-database and counting from a fixed
   base: far above any transaction id, and deterministic — the same
   sequence of schema changes on a fresh database always produces the
   same job names, which fixed-seed trace tests rely on. *)
let fresh_holder t =
  t.holders <- t.holders + 1;
  t.holders

let catalog t = t.cat
let manager t = t.mgr
let obs t = t.obs
let log t = Manager.log t.mgr

module Scrub = Scrub

module Observe = struct
  let snapshot t = Obs.Registry.snapshot t.obs

  let subscribe t f =
    let sink = Obs.callback_sink f in
    Obs.Registry.attach t.obs sink;
    fun () -> Obs.Registry.detach t.obs sink
end

let create_table t ?indexes ~name schema =
  let table = Catalog.create_table t.cat ?indexes ~name schema in
  Manager.track_table t.mgr table;
  table

let table t name = Catalog.find t.cat name

let with_txn ?isolation t f =
  let txn = Manager.begin_txn ?isolation t.mgr in
  let abort_noting_failure () =
    match Manager.abort t.mgr txn with
    | Ok () -> ()
    | Error e ->
      (* The rollback itself failed — never swallow that silently. *)
      Logs.err (fun m ->
          m "Db.with_txn: abort of txn %d failed: %a" txn Manager.pp_error e)
  in
  match f txn with
  | Ok v ->
    (match Manager.commit t.mgr txn with
     | Ok () -> Ok v
     | Error e ->
       abort_noting_failure ();
       Error e)
  | Error e ->
    abort_noting_failure ();
    Error e

let load t ~table rows =
  with_txn t (fun txn ->
      List.fold_left
        (fun acc row ->
           match acc with
           | Error _ as e -> e
           | Ok () -> Manager.insert t.mgr ~txn ~table row)
        (Ok ()) rows)

let snapshot t name =
  let tbl = table t name in
  Nbsc_relalg.Relalg.make (Table.schema tbl) (Table.to_rows tbl)

let row_count t name = Table.cardinality (table t name)

(* {2 Background jobs}

   The registry of in-flight schema changes (and any other incremental
   background work). Jobs are opaque quantum steppers: each call to the
   closure performs one bounded quantum. The db schedules them
   round-robin so several transformations interleave fairly. *)

let register_job t ?persist ~name ~step () =
  t.jobs <- t.jobs @ [ (name, { j_step = step; j_persist = persist }) ];
  if Obs.Registry.tracing t.obs then
    Obs.point t.obs "job.register" [ ("job", Json.String name) ]

let unregister_job t ~name =
  t.jobs <- List.filter (fun (n, _) -> not (String.equal n name)) t.jobs

let jobs t = List.map fst t.jobs

let job_persists t =
  List.filter_map
    (fun (name, j) ->
       match j.j_persist with
       | Some p -> Some (name, p)
       | None -> None)
    t.jobs

let step_jobs t =
  let snapshot = t.jobs in
  List.map
    (fun (name, job) ->
       let st = job.j_step () in
       (match st with
        | `Done | `Failed _ ->
          (* Most jobs deregister themselves on completion; make sure. *)
          unregister_job t ~name;
          if Obs.Registry.tracing t.obs then
            Obs.point t.obs "job.done"
              [ ("job", Json.String name);
                ("status",
                 Json.String
                   (match st with
                    | `Done -> "done"
                    | `Failed m -> "failed: " ^ m
                    | `Running -> assert false)) ]
        | `Running -> ());
       (name, st))
    snapshot

let run_jobs ?(between = fun () -> ()) ?(max_rounds = max_int) t =
  let rec go rounds =
    if t.jobs = [] then Ok ()
    else if rounds <= 0 then Error "background jobs did not finish"
    else begin
      let results = step_jobs t in
      let failure =
        List.find_map
          (function
            | name, `Failed m -> Some (name ^ ": " ^ m)
            | _, (`Running | `Done) -> None)
          results
      in
      match failure with
      | Some m -> Error m
      | None ->
        between ();
        go (rounds - 1)
    end
  in
  go max_rounds
