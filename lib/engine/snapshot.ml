open Nbsc_value
open Nbsc_wal
open Nbsc_storage
open Nbsc_txn

type error = Nbsc_error.t

(* Line format (every payload is a Codec chunk list):
     H:<head-lsn>
     T:<name>|<schema chunks>
     I:<table>|<index name>|<columns...>     (hash index)
     O:<table>|<index name>|<columns...>     (ordered index)
     R:<table>|<lsn>|<counter>|<flag>|<aux>|<row chunks>
   '|' never appears unescaped because each field is itself a
   length-prefixed chunk inside one Codec string. *)

let encode_schema schema =
  let cols =
    List.concat_map
      (fun c ->
         [ c.Schema.col_name;
           (match c.Schema.col_ty with
            | Value.TInt -> "int"
            | Value.TFloat -> "float"
            | Value.TBool -> "bool"
            | Value.TText -> "text");
           (if c.Schema.nullable then "1" else "0") ])
      (Schema.columns schema)
  in
  Codec.encode_string_list
    (string_of_int (Schema.arity schema)
     :: (cols @ Schema.key_names schema))

let decode_schema s =
  match Codec.decode_string_list s with
  | n :: rest ->
    let n = int_of_string n in
    let rec take_cols k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | name :: ty :: nullable :: rest ->
          let col_ty =
            match ty with
            | "int" -> Value.TInt
            | "float" -> Value.TFloat
            | "bool" -> Value.TBool
            | "text" -> Value.TText
            | _ -> failwith "Snapshot: bad column type"
          in
          take_cols (k - 1)
            (Schema.column ~nullable:(nullable = "1") name col_ty :: acc)
            rest
        | _ -> failwith "Snapshot: truncated schema"
    in
    let cols, key = take_cols n [] rest in
    Schema.make ~key cols
  | [] -> failwith "Snapshot: empty schema"

let flag_to_string = function Record.Consistent -> "C" | Record.Unknown -> "U"

let flag_of_string = function
  | "C" -> Record.Consistent
  | "U" -> Record.Unknown
  | _ -> failwith "Snapshot: bad flag"

let save db =
  let mgr = Db.manager db in
  match Manager.active_snapshot mgr with
  | (_ :: _) as active ->
    Error (`Active_transactions (List.map fst active))
  | [] ->
    let buf = ref [] in
    let emit line = buf := line :: !buf in
    emit ("H:" ^ Lsn.to_string (Log.head (Db.log db)));
    List.iter
      (fun table ->
         let name = Table.name table in
         emit
           ("T:"
            ^ Codec.encode_string_list
                [ name; encode_schema (Table.schema table) ]);
         List.iter
           (fun (ix_name, columns) ->
              emit
                ("I:" ^ Codec.encode_string_list (name :: ix_name :: columns)))
           (Table.index_definitions table);
         List.iter
           (fun (ix_name, columns) ->
              emit
                ("O:" ^ Codec.encode_string_list (name :: ix_name :: columns)))
           (Table.ordered_index_definitions table);
         Table.iter table (fun _ record ->
             emit
               ("R:"
                ^ Codec.encode_string_list
                    [ name;
                      Lsn.to_string record.Record.lsn;
                      string_of_int record.Record.counter;
                      flag_to_string record.Record.flag;
                      string_of_int record.Record.aux;
                      Codec.encode_row record.Record.row ])))
      (List.sort
         (fun a b -> String.compare (Table.name a) (Table.name b))
         (Catalog.tables (Db.catalog db)));
    Ok (List.rev !buf)

let load lines =
  try
    let head = ref Lsn.zero in
    let catalog = Catalog.create () in
    List.iter
      (fun line ->
         if String.length line < 2 || line.[1] <> ':' then
           failwith "Snapshot: malformed line";
         let payload = String.sub line 2 (String.length line - 2) in
         match line.[0] with
         | 'H' -> head := Lsn.of_int (int_of_string payload)
         | 'T' ->
           (match Codec.decode_string_list payload with
            | [ name; schema ] ->
              ignore
                (Catalog.create_table catalog ~name (decode_schema schema))
            | _ -> failwith "Snapshot: bad table line")
         | 'I' ->
           (match Codec.decode_string_list payload with
            | table :: ix_name :: columns ->
              Table.add_index (Catalog.find catalog table) ~name:ix_name
                ~columns
            | _ -> failwith "Snapshot: bad index line")
         | 'O' ->
           (match Codec.decode_string_list payload with
            | table :: ix_name :: columns ->
              Table.add_ordered_index (Catalog.find catalog table)
                ~name:ix_name ~columns
            | _ -> failwith "Snapshot: bad ordered index line")
         | 'R' ->
           (match Codec.decode_string_list payload with
            | [ table; lsn; counter; flag; aux; row ] ->
              let tbl = Catalog.find catalog table in
              (match
                 Table.insert tbl
                   ~lsn:(Lsn.of_int (int_of_string lsn))
                   ~counter:(int_of_string counter)
                   ~flag:(flag_of_string flag)
                   ~aux:(int_of_string aux)
                   (Codec.decode_row row)
               with
               | Ok () -> ()
               | Error `Duplicate_key -> failwith "Snapshot: duplicate row")
            | _ -> failwith "Snapshot: bad row line")
         | _ -> failwith "Snapshot: unknown line kind")
      lines;
    Ok (Db.of_parts catalog ~log:(Log.create ~base:!head ()))
  with
  | Failure m -> Error (Nbsc_error.corrupt m)
  | Not_found -> Error (Nbsc_error.corrupt "reference to unknown table")

let pp_error = Nbsc_error.pp
