module Obs = Nbsc_obs.Obs

type mode = Crash | Torn

exception Injected of { site : string; mode : mode }

let all_sites =
  [ "wal_append"; "snapshot_write"; "snapshot_rename"; "wal_rewrite";
    "quantum_end"; "sync_commit" ]

type armed = {
  a_mode : mode;
  mutable remaining : int;  (* hits to let pass before firing *)
}

let armed_tbl : (string, armed) Hashtbl.t = Hashtbl.create 8

(* Hit counts live in an observability registry of their own — the
   fault machinery is process-global, unlike the per-db registries, so
   it cannot piggyback on any one database's. *)
let registry = Obs.Registry.create ()

let obs () = registry

let armed_count = ref 0
let tracking = ref false

let enabled () = !armed_count > 0 || !tracking

let set_tracking b = tracking := b

let arm ?(mode = Crash) ?(after = 0) site =
  if not (Hashtbl.mem armed_tbl site) then incr armed_count;
  Hashtbl.replace armed_tbl site { a_mode = mode; remaining = after }

let disarm site =
  if Hashtbl.mem armed_tbl site then begin
    Hashtbl.remove armed_tbl site;
    decr armed_count
  end

let reset () =
  Hashtbl.reset armed_tbl;
  Obs.Registry.zero registry;
  armed_count := 0;
  tracking := false

let counter site = Obs.Registry.counter registry ("fault.hits." ^ site)

let count site = Obs.Counter.incr (counter site)

let hits site = Obs.Counter.value (counter site)

(* The mode to fire with, if the site is armed and due. The armed entry
   is removed before raising so each arming crashes exactly once. *)
let due site =
  match Hashtbl.find_opt armed_tbl site with
  | None -> None
  | Some a ->
    if a.remaining > 0 then begin
      a.remaining <- a.remaining - 1;
      None
    end
    else begin
      disarm site;
      Some a.a_mode
    end

let hit site =
  if enabled () then begin
    count site;
    match due site with
    | Some mode ->
      (* A Torn arming at a plain hit point degrades to a clean crash:
         there is no partial effect to perform here. *)
      raise (Injected { site; mode })
    | None -> ()
  end

let torn site ~partial =
  if enabled () then begin
    count site;
    match due site with
    | Some Torn ->
      partial ();
      raise (Injected { site; mode = Torn })
    | Some Crash -> raise (Injected { site; mode = Crash })
    | None -> ()
  end
