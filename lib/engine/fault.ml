module Obs = Nbsc_obs.Obs

type errno = EIO | ENOSPC

type mode =
  | Crash
  | Torn
  | Io_error of { errno : errno; transient : bool }
  | Bit_flip

exception Injected of { site : string; mode : mode }
exception Io_injected of { site : string; errno : errno; transient : bool }

let errno_to_string = function EIO -> "EIO" | ENOSPC -> "ENOSPC"

let all_sites =
  [ "wal_append"; "snapshot_write"; "snapshot_rename"; "wal_rewrite";
    "quantum_end"; "sync_commit"; "snapshot_load"; "recovery_replay";
    "recovery_truncate" ]

type armed = {
  a_mode : mode;
  mutable remaining : int;  (* hits to let pass before firing *)
}

let armed_tbl : (string, armed) Hashtbl.t = Hashtbl.create 8

(* Hit counts live in an observability registry of their own — the
   fault machinery is process-global, unlike the per-db registries, so
   it cannot piggyback on any one database's. *)
let registry = Obs.Registry.create ()

let obs () = registry

let armed_count = ref 0
let tracking = ref false

let enabled () = !armed_count > 0 || !tracking

let set_tracking b = tracking := b

let arm ?(mode = Crash) ?(after = 0) site =
  if not (Hashtbl.mem armed_tbl site) then incr armed_count;
  Hashtbl.replace armed_tbl site { a_mode = mode; remaining = after }

let disarm site =
  if Hashtbl.mem armed_tbl site then begin
    Hashtbl.remove armed_tbl site;
    decr armed_count
  end

let reset () =
  Hashtbl.reset armed_tbl;
  Obs.Registry.zero registry;
  armed_count := 0;
  tracking := false

let counter site = Obs.Registry.counter registry ("fault.hits." ^ site)

let count site = Obs.Counter.incr (counter site)

let io_counter site = Obs.Registry.counter registry ("fault.io_hits." ^ site)

let io_hits site = Obs.Counter.value (io_counter site)

let hits site = Obs.Counter.value (counter site)

(* The mode to fire with, if the site is armed with a mode this
   consultation point can express ([can]) and the countdown is over.
   The countdown only advances at capable consultations, so an [after]
   offset learned from a dry run of one consultation kind stays valid
   when other kinds also guard the same site. Every firing disarms the
   site — each arming fires exactly once — except a {e non-transient}
   [Io_error], which models a condition (dead disk, full disk) rather
   than an event: it keeps firing on every consultation until
   explicitly disarmed. *)
let due site ~can =
  match Hashtbl.find_opt armed_tbl site with
  | None -> None
  | Some a ->
    if not (can a.a_mode) then None
    else if a.remaining > 0 then begin
      a.remaining <- a.remaining - 1;
      None
    end
    else begin
      (match a.a_mode with
       | Io_error { transient = false; _ } -> ()
       | Crash | Torn | Bit_flip | Io_error { transient = true; _ } ->
         disarm site);
      Some a.a_mode
    end

let fire site = function
  | Io_error { errno; transient } ->
    raise (Io_injected { site; errno; transient })
  | mode -> raise (Injected { site; mode })

let hit site =
  if enabled () then begin
    count site;
    match due site ~can:(fun _ -> true) with
    | Some mode ->
      (* A Torn or Bit_flip arming at a plain hit point degrades to a
         clean crash: there is no byte stream to damage here. *)
      fire site mode
    | None -> ()
  end

let write_record site ~partial ~flip =
  if enabled () then begin
    count site;
    match due site ~can:(function Io_error _ -> false | _ -> true) with
    | Some Torn ->
      partial ();
      raise (Injected { site; mode = Torn })
    | Some Bit_flip ->
      (* Silent bit rot: damage the framed bytes and carry on — only a
         later checksum verification may notice. *)
      flip ()
    | Some mode -> fire site mode
    | None -> ()
  end

let file_write site ~flip =
  if enabled () then begin
    count site;
    match due site ~can:(fun _ -> true) with
    | Some Bit_flip -> flip ()
    | Some mode -> fire site mode
    | None -> ()
  end

let io site =
  if enabled () then begin
    Obs.Counter.incr (io_counter site);
    match due site ~can:(function Io_error _ -> true | _ -> false) with
    | Some mode -> fire site mode
    | None -> ()
  end
