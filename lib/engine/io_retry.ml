(* Bounded jittered retry for transient I/O errors at the persist
   layer. The policy shape mirrors [Nbsc_sim.Backoff] (base, factor,
   cap, budget, half-jitter), but lives at the engine level: the engine
   library does not depend on the simulator, and the engine is
   cooperative/single-threaded, so the computed delays are advisory
   bookkeeping handed to [on_retry] (counted, logged), not wall-clock
   sleeps. *)

type policy = {
  base : int;    (* first delay, arbitrary units *)
  factor : int;  (* exponential growth per retry *)
  cap : int;     (* delay ceiling *)
  budget : int;  (* retries before giving up *)
}

let default = { base = 1; factor = 2; cap = 16; budget = 4 }

(* Raw exponential delay for [attempt] (0-based), then half-jitter:
   uniform in [d/2, d], like Backoff.jittered — desynchronises retriers
   without ever collapsing the delay to zero. *)
let delay p rng ~attempt =
  let rec raw i d = if i <= 0 then d else raw (i - 1) (min p.cap (d * p.factor)) in
  let d = max 1 (raw attempt p.base) in
  if d <= 1 then d else (d / 2) + Random.State.int rng (d - (d / 2) + 1)

let with_transient_retries ?(policy = default) ~rng ~on_retry f =
  let rec go attempt =
    match f () with
    | v -> v
    | exception Fault.Io_injected { errno = Fault.EIO; transient = true; _ }
      when attempt < policy.budget ->
      on_retry ~attempt ~delay:(delay policy rng ~attempt);
      go (attempt + 1)
  in
  go 0
