(** Database snapshots — the sharp checkpoint that lets the log be
    truncated.

    A snapshot serializes the entire catalog (schemas, indexes) and
    every record (row, LSN, counter, flag, aux) into text lines; loading
    one yields a database whose fresh log continues at the snapshot
    LSN, so record LSNs stay monotonic and the split rules' LSN
    discipline keeps working across restarts. Recovery after a crash is
    then: load the latest snapshot, replay the retained log suffix with
    {!Recovery.recover}-style redo (records at or below the snapshot
    LSN are skipped by the ordinary record-LSN idempotence check).

    Snapshots are {e sharp}: the database must have no active
    transactions (quiesce first, or take it from a freshly recovered
    state). A fuzzy checkpointing scheme would reuse the paper's own
    fuzzy machinery but is out of scope. *)

type error = Nbsc_error.t
(** [save] produces [`Active_transactions]; [load] produces
    [`Corrupt]. One rendering for all of it: {!Nbsc_error.to_string}. *)

val save : Db.t -> (string list, error) result

val load : string list -> (Db.t, error) result
(** The returned database has an empty log based at the snapshot LSN. *)

val pp_error : Format.formatter -> error -> unit
