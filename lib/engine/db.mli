(** Database facade.

    Bundles a catalog and a transaction manager and offers the
    conveniences everything above the substrate uses: one-shot
    auto-committed statements, bulk loads, and state snapshots for
    comparing against the relational-algebra oracle. *)

open Nbsc_value
open Nbsc_storage
open Nbsc_txn

type t

val create : ?obs:Nbsc_obs.Obs.Registry.t -> unit -> t
(** [obs] is the observability registry every instrument in this
    database registers in (transaction manager, lock layer, schema
    changes, …); a fresh one is created when not given. Supply one to
    share a registry across components or to pre-attach sinks. *)

val of_parts :
  ?obs:Nbsc_obs.Obs.Registry.t -> Nbsc_storage.Catalog.t ->
  log:Nbsc_wal.Log.t -> t
(** Wrap an existing catalog (e.g. one restored from a snapshot) with a
    fresh transaction manager over the given log. *)

val catalog : t -> Catalog.t
val manager : t -> Manager.t

val obs : t -> Nbsc_obs.Obs.Registry.t
(** The database's observability registry — every counter, gauge and
    probe in the system lives here; trace events flow to its sinks. *)

val log : t -> Nbsc_wal.Log.t

val fresh_holder : t -> int
(** Allocate an identity for a background job (used as latch-holder and
    lock-hook id, and as the default job-name suffix). Per-database and
    deterministic: a fresh database always hands out the same sequence,
    starting well above any transaction id. *)

(** The one read-side API for observability. *)
module Observe : sig
  val snapshot : t -> (string * Nbsc_obs.Obs.value) list
  (** Every instrument, sorted by name ({!Nbsc_obs.Obs.Registry.snapshot}). *)

  val subscribe : t -> (Nbsc_obs.Obs.event -> unit) -> unit -> unit
  (** [subscribe t f] attaches [f] as a live trace subscriber and
      returns an unsubscribe function. Subscribing turns tracing on
      (instrumented paths start emitting events). *)
end

module Scrub = Scrub
(** Offline integrity verification of a database directory — see
    {!Scrub}. Aliased here so CLI-facing callers have one entry point
    ([Db.Scrub.verify_dir]); it deliberately takes a directory, not a
    [t]: scrubbing trusts nothing enough to open it. *)

val create_table :
  t -> ?indexes:(string * string list) list -> name:string -> Schema.t ->
  Table.t

val table : t -> string -> Table.t
(** @raise Not_found *)

val with_txn : ?isolation:Manager.isolation -> t ->
  (Manager.txn_id -> ('a, Manager.error) result) ->
  ('a, Manager.error) result
(** Run [f] in a fresh transaction; commit on [Ok], roll back on
    [Error]. A commit failure also rolls back. If the rollback itself
    fails its error is logged (it cannot mask [f]'s result).
    [isolation] (default [`Read_committed], the classical locked-read
    mode) selects [`Snapshot] MVCC reads — see {!Manager.begin_txn}. *)

val load : t -> table:string -> Row.t list -> (unit, Manager.error) result
(** Bulk-insert rows in one transaction. *)

val snapshot : t -> string -> Nbsc_relalg.Relalg.t
(** The table's current rows as a relation (for oracle comparison). *)

val row_count : t -> string -> int

(** {2 Background jobs}

    The registry of in-flight incremental background work — schema
    transformations above all. A job is an opaque quantum stepper: each
    call performs one bounded quantum of work and reports whether the
    job still runs. The db knows nothing about what a job does, so the
    engine layer stays below the transformation framework; the executor
    in [Nbsc_core.Transform] registers every transformation here. *)

type job_status = [ `Running | `Done | `Failed of string ]

type job_persist = {
  job_state : string;
      (** Opaque resume payload — enough for the job's owner to rebuild
          and resume it after a crash (see [Nbsc_core.Transform]). *)
  low_water : Nbsc_wal.Lsn.t;
      (** The oldest log position the resumed job would re-read (the
          {e next} record its propagator consumes). A checkpoint must
          retain every WAL record at or above this LSN. *)
}

val register_job :
  t -> ?persist:(unit -> job_persist) -> name:string ->
  step:(unit -> job_status) -> unit -> unit
(** Append a job (FIFO order; names should be unique). [persist], when
    given, lets durability ({!Persist.checkpoint}) re-emit the job's
    current resume state into the WAL; jobs without it simply restart
    from scratch after a crash. *)

val unregister_job : t -> name:string -> unit

val jobs : t -> string list
(** Names of the in-flight jobs, in scheduling order. *)

val job_persists : t -> (string * (unit -> job_persist)) list
(** The persistable jobs and their current-state thunks, in scheduling
    order. *)

val step_jobs : t -> (string * job_status) list
(** One fair round: every in-flight job runs one quantum, round-robin.
    Jobs that report [`Done] or [`Failed] are removed. *)

val run_jobs :
  ?between:(unit -> unit) -> ?max_rounds:int -> t -> (unit, string) result
(** Drive all registered jobs to completion, calling [between] after
    each round so callers can interleave user transactions. Stops at
    the first failure. *)
