module Crc32 = Nbsc_value.Crc32
module Obs = Nbsc_obs.Obs

let version = 2

let snapshot_magic = "nbsc:snapshot:v2"
let wal_magic = "nbsc:wal:v2"

let snapshot_path dir = Filename.concat dir "snapshot.nbsc"
let wal_path dir = Filename.concat dir "wal.nbsc"

(* Storage-integrity instruments live in a registry of their own:
   corruption is detected while opening a directory, i.e. before any
   per-db registry exists, and [nbsc scrub] runs without a db at all. *)
let registry = Obs.Registry.create ()

let obs () = registry

let crc_failures () = Obs.Registry.counter registry "storage.crc_failures"
let io_retries () = Obs.Registry.counter registry "storage.io_retries"
let disk_full_stalls () = Obs.Registry.counter registry "storage.disk_full_stalls"

(* {2 Line framing}

   Every payload line is stored as [<8 hex chars>:<payload>] — the
   CRC-32 of the payload in a fixed-width field, so the separator
   cannot be confused with payload bytes (payloads may contain ':').
   The first line of each file is an unframed magic string naming the
   format version; framing the version marker would be circular (you
   need the format to know the framing). *)

let frame_into out payload =
  Buffer.add_string out (Crc32.to_hex (Crc32.of_buffer payload));
  Buffer.add_char out ':';
  Buffer.add_buffer out payload

let frame payload =
  Crc32.to_hex (Crc32.of_string payload) ^ ":" ^ payload

let unframe ~path ~line ?lsn s =
  let corrupt = Nbsc_error.corrupt ~path ~line ?lsn in
  if String.length s < 9 || s.[8] <> ':' then begin
    Obs.Counter.incr (crc_failures ());
    Error (corrupt "malformed line: missing checksum frame")
  end
  else
    let hex = String.sub s 0 8 in
    match Crc32.of_hex hex with
    | None ->
      Obs.Counter.incr (crc_failures ());
      Error (corrupt "malformed line: checksum field is not hex")
    | Some expected ->
      let payload = String.sub s 9 (String.length s - 9) in
      let actual = Crc32.of_string payload in
      if Crc32.equal actual expected then Ok payload
      else begin
        Obs.Counter.incr (crc_failures ());
        Error
          (Nbsc_error.corrupt ~path ~line ?lsn ~expected_crc:hex
             ~actual_crc:(Crc32.to_hex actual) "checksum mismatch")
      end

(* {2 File headers} *)

let looks_versioned l =
  String.length l >= 5 && String.equal (String.sub l 0 5) "nbsc:"

let check_header ~magic ~path = function
  | Some l when String.equal l magic -> Ok ()
  | Some l when looks_versioned l ->
    Error
      (Nbsc_error.corrupt ~path ~line:1
         (Printf.sprintf
            "on-disk format %S is not supported by this build (expects %S)" l
            magic))
  | Some _ ->
    Error
      (Nbsc_error.corrupt ~path ~line:1
         (Printf.sprintf
            "missing format header (expected %S): this looks like a pre-v%d \
             database directory, which this build does not read"
            magic version))
  | None ->
    Error (Nbsc_error.corrupt ~path "empty file: missing format header")

(* {2 Snapshot trailer}

   The WAL detects truncation structurally (prev-LSN chain + the
   snapshot coverage check), but a snapshot truncated at an exact line
   boundary would simply look shorter — every surviving line still
   checksums. A framed trailer recording the payload line count closes
   that hole: rename-swapped files are written in one piece, so a
   complete snapshot always carries its trailer. *)

let trailer_tag = "@end:"

let trailer n = trailer_tag ^ string_of_int n

let trailer_count payload =
  let tl = String.length trailer_tag in
  if
    String.length payload > tl
    && String.equal (String.sub payload 0 tl) trailer_tag
  then int_of_string_opt (String.sub payload tl (String.length payload - tl))
  else None
