open Nbsc_wal

type file_report = {
  f_path : string;
  f_present : bool;
  f_lines : int;
  f_torn_tail : bool;
  f_errors : Nbsc_error.corruption list;
}

type report = { dir : string; files : file_report list }

let ok r = List.for_all (fun f -> f.f_errors = []) r.files

let errors r = List.concat_map (fun f -> f.f_errors) r.files

let io f = try Ok (f ()) with Sys_error m -> Error (`Io m)

let absent path =
  { f_path = path; f_present = false; f_lines = 0; f_torn_tail = false;
    f_errors =
      [ Nbsc_error.corruption ~path "file missing" ] }

let read_raw path =
  io (fun () ->
      let ic = open_in_bin path in
      let n = in_channel_length ic in
      let s = really_input_string ic n in
      close_in ic;
      s)

(* Split into lines, separating a final unterminated fragment (the torn
   tail a crash legitimately leaves on the WAL). *)
let split_lines s =
  if String.equal s "" then ([], false)
  else
    let terminated = s.[String.length s - 1] = '\n' in
    let body = if terminated then String.sub s 0 (String.length s - 1) else s in
    let lines = String.split_on_char '\n' body in
    if terminated then (lines, false)
    else
      match List.rev lines with
      | _torn :: rest -> (List.rev rest, true)
      | [] -> ([], true)

let corruption_of_error path = function
  | `Corrupt c -> c
  | e -> Nbsc_error.corruption ~path (Nbsc_error.to_string e)

(* Walk one file: header, then per-line frame verification, handing
   each good payload (with its line number) to [check_payload] for
   deeper structural checks, then [finish] over everything that
   unframed cleanly. *)
let verify_file ~path ~magic ~tolerate_torn ~check_payload ~finish =
  match read_raw path with
  | Error e -> { (absent path) with f_errors = [ corruption_of_error path e ] }
  | Ok raw ->
    let lines, torn = split_lines raw in
    let torn_ok = torn && tolerate_torn in
    let errors = ref [] in
    let add e = errors := corruption_of_error path e :: !errors in
    if torn && not tolerate_torn then
      add
        (Nbsc_error.corrupt ~path
           "unterminated final line in a rename-swapped file");
    let payloads = ref [] in
    (match lines with
     | [] ->
       (match Disk_format.check_header ~magic ~path None with
        | Ok () -> ()
        | Error e -> add e)
     | header :: framed ->
       (match Disk_format.check_header ~magic ~path (Some header) with
        | Ok () -> ()
        | Error e -> add e);
       List.iteri
         (fun i raw_line ->
            let line = i + 2 in
            match Disk_format.unframe ~path ~line raw_line with
            | Ok payload ->
              payloads := (line, payload) :: !payloads;
              (match check_payload ~line payload with
               | Ok () -> ()
               | Error e -> add e)
            | Error e -> add e)
         framed);
    (match finish (List.rev !payloads) with
     | Ok () -> ()
     | Error e -> add e);
    { f_path = path; f_present = true;
      f_lines = List.length !payloads; f_torn_tail = torn_ok;
      f_errors = List.rev !errors }

let verify_snapshot path =
  verify_file ~path ~magic:Disk_format.snapshot_magic ~tolerate_torn:false
    ~check_payload:(fun ~line:_ _ -> Ok ())
    ~finish:(fun payloads ->
        (* The trailer closes the truncated-at-a-line-boundary hole:
           every surviving line checksums, only the count gives the cut
           away. *)
        match List.rev payloads with
        | (line, last) :: rest ->
          (match Disk_format.trailer_count last with
           | Some n when n = List.length rest -> Ok ()
           | Some n ->
             Error
               (Nbsc_error.corrupt ~path ~line
                  (Printf.sprintf
                     "snapshot trailer records %d payload lines but %d are \
                      present — file truncated or spliced"
                     n (List.length rest)))
           | None ->
             Error
               (Nbsc_error.corrupt ~path ~line
                  "snapshot trailer missing — file truncated at a line \
                   boundary?"))
        | [] -> Error (Nbsc_error.corrupt ~path "snapshot holds no lines"))

let verify_wal path =
  if not (Sys.file_exists path) then
    (* A directory checkpointed with no pending jobs may legitimately
       hold a WAL with no records, but the file itself (with header) is
       always present once created. Missing entirely is reported. *)
    absent path
  else
    let records = ref [] in
    let r =
      verify_file ~path ~magic:Disk_format.wal_magic ~tolerate_torn:true
        ~check_payload:(fun ~line payload ->
            match Log_record.decode payload with
            | record ->
              records := record :: !records;
              Ok ()
            | exception Failure m -> Error (Nbsc_error.corrupt ~path ~line m))
        ~finish:(fun _ -> Ok ())
    in
    if r.f_errors <> [] then r
    else
      (* Structural pass over the decoded records: contiguous LSNs and
         well-formed prev-LSN chains, the same validation replay runs. *)
      match Log.of_records (List.rev !records) with
      | (_ : Log.t) -> r
      | exception Failure m ->
        { r with f_errors = [ Nbsc_error.corruption ~path m ] }

let verify_dir ~dir =
  if not (Sys.file_exists dir) then Error (`Io (dir ^ ": no such directory"))
  else
    Ok
      { dir;
        files =
          [ verify_snapshot (Disk_format.snapshot_path dir);
            verify_wal (Disk_format.wal_path dir) ] }

let pp_file ppf f =
  if not f.f_present then Format.fprintf ppf "%s: MISSING@," f.f_path
  else begin
    Format.fprintf ppf "%s: %d line(s)%s — %s@," f.f_path f.f_lines
      (if f.f_torn_tail then " (torn tail tolerated)" else "")
      (if f.f_errors = [] then "clean"
       else string_of_int (List.length f.f_errors) ^ " error(s)");
    List.iter
      (fun c ->
         Format.fprintf ppf "  %s@," (Nbsc_error.corruption_to_string c))
      f.f_errors
  end

let pp_report ppf r =
  Format.fprintf ppf "@[<v>scrub %s:@," r.dir;
  List.iter (pp_file ppf) r.files;
  Format.fprintf ppf "%s@]"
    (if ok r then "CLEAN" else "CORRUPT")
