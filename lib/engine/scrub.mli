(** Offline storage-integrity verification — the engine behind
    [nbsc scrub] and [make scrub].

    Walks a database directory {e without opening it}: no replay, no
    state mutation, no channel kept open. Both files are verified
    against the v2 on-disk format ({!Disk_format}): version header,
    per-line CRC-32, snapshot trailer (truncation at a line boundary),
    WAL record decodability and LSN-chain structure. A torn
    (unterminated) final WAL line is tolerated and noted — that is the
    legitimate signature of a crash mid-append, which reopening trims —
    while every other deviation is reported with file/line/checksum
    context.

    Checksum failures found here count into the same
    [storage.crc_failures] instrument ({!Disk_format.obs}) that reopen
    verification uses. *)

type file_report = {
  f_path : string;
  f_present : bool;
  f_lines : int;           (** payload lines that verified *)
  f_torn_tail : bool;      (** a torn final WAL line was tolerated *)
  f_errors : Nbsc_error.corruption list;
}

type report = { dir : string; files : file_report list }

val verify_dir : dir:string -> (report, Nbsc_error.t) result
(** Verify [snapshot.nbsc] and [wal.nbsc] under [dir]. [Error] only for
    directory-level I/O trouble; per-file damage lands in the report. *)

val ok : report -> bool
(** No file reported any error. *)

val errors : report -> Nbsc_error.corruption list
(** All errors across files, in file order. *)

val pp_report : Format.formatter -> report -> unit
