(** Bounded jittered retry for transient I/O errors.

    The persist layer wraps every physical write in
    {!with_transient_retries}: a transient [EIO]
    ({!Fault.Io_injected}) is retried up to [budget] times with
    exponentially growing, half-jittered delays; anything else —
    persistent [EIO], [ENOSPC], real [Sys_error]s — propagates to the
    caller's own handling. The policy shape deliberately mirrors
    [Nbsc_sim.Backoff] (the engine cannot depend on the simulator);
    delays are advisory units reported through [on_retry], not sleeps —
    the engine is cooperative and single-threaded. *)

type policy = {
  base : int;    (** first delay, arbitrary units *)
  factor : int;  (** exponential growth per retry *)
  cap : int;     (** delay ceiling *)
  budget : int;  (** retries before giving up *)
}

val default : policy
(** [{base = 1; factor = 2; cap = 16; budget = 4}]. *)

val delay : policy -> Random.State.t -> attempt:int -> int
(** The jittered delay for the [attempt]-th retry (0-based): uniform in
    [[d/2, d]] where [d] is the capped exponential raw delay. *)

val with_transient_retries :
  ?policy:policy ->
  rng:Random.State.t ->
  on_retry:(attempt:int -> delay:int -> unit) ->
  (unit -> 'a) ->
  'a
(** Run the thunk, retrying it on transient [EIO] until the budget is
    spent (then the last failure re-raises). [on_retry] observes each
    retry — the persist layer counts it into [storage.io_retries]. *)
