(** A minimal JSON tree, encoder and parser.

    Just enough for the observability layer: trace events are written
    as compact one-object-per-line JSON ("JSON lines"), and the CI
    validator parses them back. No external dependency, no streaming,
    no opinions about numbers beyond OCaml's [int]/[float] split.

    The encoder always produces a single line (no pretty-printing) so a
    JSON-lines file is splittable on ['\n']. Non-finite floats encode
    as [null] (JSON has no NaN). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact, single-line encoding with full string escaping. *)

val of_string : string -> (t, string) result
(** Parse one JSON value (surrounding whitespace allowed; trailing
    garbage is an error). [\uXXXX] escapes are decoded to UTF-8. *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_float : t -> float option
(** Numeric accessor accepting both [Int] and [Float]. *)
