type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* {1 Encoding} *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
       match c with
       | '"' -> Buffer.add_string buf "\\\""
       | '\\' -> Buffer.add_string buf "\\\\"
       | '\n' -> Buffer.add_string buf "\\n"
       | '\r' -> Buffer.add_string buf "\\r"
       | '\t' -> Buffer.add_string buf "\\t"
       | c when Char.code c < 0x20 ->
         Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
       | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if Float.is_integer f && Float.abs f < 1e15 then
    (* Keep round floats readable and round-trippable. *)
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    if Float.is_finite f then Buffer.add_string buf (float_to_string f)
    else Buffer.add_string buf "null"
  | String s -> escape buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
         if i > 0 then Buffer.add_char buf ',';
         write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
         if i > 0 then Buffer.add_char buf ',';
         escape buf k;
         Buffer.add_char buf ':';
         write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 128 in
  write buf j;
  Buffer.contents buf

(* {1 Parsing} *)

exception Parse of string

let parse_error fmt = Printf.ksprintf (fun m -> raise (Parse m)) fmt

type cursor = {
  src : string;
  mutable pos : int;
}

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "expected %c at %d, got %c" ch c.pos x
  | None -> parse_error "expected %c at %d, got end of input" ch c.pos

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else parse_error "bad literal at %d" c.pos

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' ->
      advance c;
      Buffer.contents buf
    | Some '\\' ->
      advance c;
      (match peek c with
       | None -> parse_error "unterminated escape"
       | Some e ->
         advance c;
         (match e with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'u' ->
            if c.pos + 4 > String.length c.src then
              parse_error "truncated \\u escape";
            let hex = String.sub c.src c.pos 4 in
            c.pos <- c.pos + 4;
            (match int_of_string_opt ("0x" ^ hex) with
             | Some code -> add_utf8 buf code
             | None -> parse_error "bad \\u escape %S" hex)
          | e -> parse_error "bad escape \\%c" e));
      go ()
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None ->
    (match float_of_string_opt s with
     | Some f -> Float f
     | None -> parse_error "bad number %S at %d" s start)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "empty input"
  | Some 'n' -> literal c "null" Null
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some '"' -> String (parse_string c)
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> parse_error "expected , or ] at %d" c.pos
      in
      List (items [])
    end
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let field () =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        (k, v)
      in
      let rec fields acc =
        let f = field () in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields (f :: acc)
        | Some '}' ->
          advance c;
          List.rev (f :: acc)
        | _ -> parse_error "expected , or } at %d" c.pos
      in
      Obj (fields [])
    end
  | Some ('0' .. '9' | '-') -> parse_number c
  | Some ch -> parse_error "unexpected %c at %d" ch c.pos

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at %d" c.pos)
    else Ok v
  | exception Parse m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | Null | Bool _ | String _ | List _ | Obj _ -> None
