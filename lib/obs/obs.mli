(** The unified observability layer: one metrics registry, one trace
    stream, pluggable sinks.

    Everything measurable in the system — transaction-manager counters,
    lock-contention statistics, schema-change progress, governor gain,
    fault-injection trips, simulator client metrics — registers here,
    so there is exactly one way to read a number out of a running
    database: {!Registry.snapshot} (or a {!probe}, for values computed
    on demand). Structured {e trace events} (phase spans, per-quantum
    progress records, lock/transaction events) flow through the same
    registry to whatever {e sinks} are attached:

    - none (the default) — tracing is off and {!emit} is one physical
      equality check, so instrumented hot paths cost nothing;
    - {!memory_sink} — a bounded in-memory ring, for tests;
    - {!jsonl_sink} — one compact JSON object per line, for the CLI
      and the bench harness;
    - {!callback_sink} — live subscription ([Db.Observe.subscribe]).

    The registry holds no wall clock: {!Registry.set_clock} injects the
    time source, so the simulator stamps events with {e virtual} time
    and two fixed-seed runs produce byte-identical traces. Instruments
    and registries are single-threaded, like the engine they observe. *)

(** {1 Instruments} *)

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val value : t -> float
  val name : t -> string
end

module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** [(upper_edge, count)] per bucket, in edge order, plus a final
      [(infinity, overflow_count)] bucket. Counts are per-bucket, not
      cumulative. *)

  val quantile : t -> float -> float
  (** Upper-edge estimate of the q-quantile (0 when empty). *)
end

(** {1 Reading} *)

type value =
  | Counter_v of int
  | Gauge_v of float  (** gauges and probes *)
  | Histogram_v of {
      h_edges : float list;
      h_counts : int list;  (** per-bucket, last = overflow *)
      h_sum : float;
      h_count : int;
    }

val pp_value : Format.formatter -> value -> unit

(** {1 Trace events} *)

type span = {
  span_id : int;
  span_parent : int option;
  span_name : string;
}

type event =
  | Span_open of { span : span; at : float; attrs : (string * Json.t) list }
  | Span_close of { span : span; at : float; attrs : (string * Json.t) list }
  | Point of {
      name : string;
      at : float;
      in_span : int option;
      attrs : (string * Json.t) list;
    }

val event_to_json : event -> Json.t
(** One flat object: [{"ev":"span_open"|"span_close"|"point",
    "name":..., "at":..., "span":id?, "parent":id?, "attrs":{...}}]. *)

(** {1 Sinks} *)

type sink

val memory_sink : ?capacity:int -> unit -> sink
(** Bounded ring (default capacity 65536); oldest events drop first. *)

val memory_events : sink -> event list
(** Captured events, oldest first.
    @raise Invalid_argument on a non-memory sink. *)

val jsonl_sink : out_channel -> sink
(** Writes {!event_to_json} of every event as one line. The channel is
    flushed per event (trace files must survive a crash mid-run). *)

val callback_sink : (event -> unit) -> sink

(** {1 The registry} *)

module Registry : sig
  type t

  val create : unit -> t

  val set_clock : t -> (unit -> float) -> unit
  (** Time source stamping trace events. Default: [Sys.time] (seconds
      of CPU time — monotonic and dependency-free). The simulator
      injects virtual time; the bench injects a wall clock. *)

  val now : t -> float

  (** Get-or-create by name. Re-requesting an existing name with the
      same instrument kind returns the existing instrument; a kind
      mismatch raises [Invalid_argument]. *)

  val counter : t -> string -> Counter.t

  val gauge : t -> string -> Gauge.t

  val histogram : ?edges:float list -> t -> string -> Histogram.t
  (** [edges] are fixed upper bucket edges (strictly increasing);
      default: a 1-2-5 geometric ladder from 1 to 1e6. Edges are fixed
      at first creation; a later call with different edges returns the
      existing histogram unchanged. *)

  val probe : t -> string -> (unit -> float) -> unit
  (** Register (or replace) a callback gauge: {!snapshot} reports the
      callback's current value, so derived quantities (propagation lag,
      governor gain, active-transaction count) need no write-through
      bookkeeping. *)

  val remove : t -> string -> unit
  (** Drop an instrument or probe (e.g. when its job finishes). *)

  val find : t -> string -> value option

  val snapshot : t -> (string * value) list
  (** Every instrument and probe, {b sorted by name} — Hashtbl iteration
      order never leaks into output, so fixed-seed dumps diff clean. *)

  val zero : t -> unit
  (** Reset counters, gauges and histograms to zero (probes are
      callbacks and have nothing to reset). Instruments stay
      registered. *)

  val attach : t -> sink -> unit
  val detach : t -> sink -> unit

  val tracing : t -> bool
  (** Whether any sink is attached. Hot paths guard attribute building
      with this. *)
end

(** {1 Emitting} *)

val emit : Registry.t -> event -> unit
(** Deliver to every attached sink; a no-op without sinks. Callers on
    hot paths should guard with {!Registry.tracing} so the event (and
    its attribute list) is never even built. *)

val point :
  Registry.t -> ?in_span:span -> string -> (string * Json.t) list -> unit
(** Emit a {!Point} stamped with the registry clock. *)

val span_open :
  Registry.t -> ?parent:span -> ?attrs:(string * Json.t) list -> string -> span
(** Allocate a span id (ids are per-registry and deterministic) and
    emit {!Span_open}. Cheap when not tracing. *)

val span_close :
  Registry.t -> ?attrs:(string * Json.t) list -> span -> unit

val with_span :
  Registry.t -> ?parent:span -> string -> (span -> 'a) -> 'a
(** Open, run, close (also on exception). *)
