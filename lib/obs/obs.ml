(* See obs.mli. Single-threaded by design, like the engine. *)

module Counter = struct
  type t = {
    c_name : string;
    mutable c_value : int;
  }

  let incr t = t.c_value <- t.c_value + 1
  let add t n = t.c_value <- t.c_value + n
  let value t = t.c_value
  let name t = t.c_name
end

module Gauge = struct
  type t = {
    g_name : string;
    mutable g_value : float;
  }

  let set t v = t.g_value <- v
  let value t = t.g_value
  let name t = t.g_name
end

module Histogram = struct
  type t = {
    h_name : string;
    edges : float array;     (* strictly increasing upper edges *)
    counts : int array;      (* length edges + 1; last = overflow *)
    mutable h_sum : float;
    mutable h_count : int;
  }

  let observe t v =
    (* Buckets are few and fixed: linear scan beats binary search at
       these sizes and never allocates. *)
    let n = Array.length t.edges in
    let rec bucket i = if i >= n || v <= t.edges.(i) then i else bucket (i + 1) in
    let i = bucket 0 in
    t.counts.(i) <- t.counts.(i) + 1;
    t.h_sum <- t.h_sum +. v;
    t.h_count <- t.h_count + 1

  let count t = t.h_count
  let sum t = t.h_sum

  let buckets t =
    List.init
      (Array.length t.counts)
      (fun i ->
         let edge =
           if i < Array.length t.edges then t.edges.(i) else infinity
         in
         (edge, t.counts.(i)))

  let quantile t q =
    if t.h_count = 0 then 0.
    else begin
      let rank =
        int_of_float (ceil (q *. float_of_int t.h_count)) |> max 1
      in
      let n = Array.length t.counts in
      let rec go i seen =
        if i >= n then infinity
        else
          let seen = seen + t.counts.(i) in
          if seen >= rank then
            if i < Array.length t.edges then t.edges.(i) else infinity
          else go (i + 1) seen
      in
      go 0 0
    end
end

type value =
  | Counter_v of int
  | Gauge_v of float
  | Histogram_v of {
      h_edges : float list;
      h_counts : int list;
      h_sum : float;
      h_count : int;
    }

let pp_value ppf = function
  | Counter_v n -> Format.fprintf ppf "%d" n
  | Gauge_v v -> Format.fprintf ppf "%g" v
  | Histogram_v { h_sum; h_count; _ } ->
    Format.fprintf ppf "count=%d sum=%g" h_count h_sum

(* {1 Trace events} *)

type span = {
  span_id : int;
  span_parent : int option;
  span_name : string;
}

type event =
  | Span_open of { span : span; at : float; attrs : (string * Json.t) list }
  | Span_close of { span : span; at : float; attrs : (string * Json.t) list }
  | Point of {
      name : string;
      at : float;
      in_span : int option;
      attrs : (string * Json.t) list;
    }

let event_to_json ev =
  let base ~ev ~name ~at ~span ~parent ~attrs =
    List.concat
      [ [ ("ev", Json.String ev); ("name", Json.String name);
          ("at", Json.Float at) ];
        (match span with Some id -> [ ("span", Json.Int id) ] | None -> []);
        (match parent with Some id -> [ ("parent", Json.Int id) ] | None -> []);
        (match attrs with [] -> [] | a -> [ ("attrs", Json.Obj a) ]) ]
  in
  match ev with
  | Span_open { span; at; attrs } ->
    Json.Obj
      (base ~ev:"span_open" ~name:span.span_name ~at ~span:(Some span.span_id)
         ~parent:span.span_parent ~attrs)
  | Span_close { span; at; attrs } ->
    Json.Obj
      (base ~ev:"span_close" ~name:span.span_name ~at ~span:(Some span.span_id)
         ~parent:span.span_parent ~attrs)
  | Point { name; at; in_span; attrs } ->
    Json.Obj (base ~ev:"point" ~name ~at ~span:in_span ~parent:None ~attrs)

(* {1 Sinks} *)

type ring = {
  mutable buf : event array;  (* Obj.magic-free: grown lazily *)
  capacity : int;
  mutable start : int;  (* index of oldest *)
  mutable len : int;
}

type sink =
  | Memory of ring
  | Jsonl of out_channel
  | Callback of (event -> unit)

let memory_sink ?(capacity = 65536) () =
  Memory { buf = [||]; capacity = max 1 capacity; start = 0; len = 0 }

let ring_push r ev =
  if Array.length r.buf = 0 then begin
    (* First event: allocate a small ring and let it grow to capacity. *)
    r.buf <- Array.make (min 256 r.capacity) ev
  end;
  if r.len < Array.length r.buf then begin
    r.buf.((r.start + r.len) mod Array.length r.buf) <- ev;
    r.len <- r.len + 1
  end
  else if Array.length r.buf < r.capacity then begin
    let bigger = Array.make (min r.capacity (Array.length r.buf * 2)) ev in
    for i = 0 to r.len - 1 do
      bigger.(i) <- r.buf.((r.start + i) mod Array.length r.buf)
    done;
    r.buf <- bigger;
    r.start <- 0;
    r.buf.(r.len) <- ev;
    r.len <- r.len + 1
  end
  else begin
    (* Full at capacity: overwrite the oldest. *)
    r.buf.(r.start) <- ev;
    r.start <- (r.start + 1) mod Array.length r.buf
  end

let memory_events = function
  | Memory r ->
    List.init r.len (fun i -> r.buf.((r.start + i) mod Array.length r.buf))
  | Jsonl _ | Callback _ ->
    invalid_arg "Obs.memory_events: not a memory sink"

let jsonl_sink oc = Jsonl oc

let callback_sink f = Callback f

let deliver sink ev =
  match sink with
  | Memory r -> ring_push r ev
  | Jsonl oc ->
    output_string oc (Json.to_string (event_to_json ev));
    output_char oc '\n';
    flush oc
  | Callback f -> f ev

(* {1 The registry} *)

type instrument =
  | I_counter of Counter.t
  | I_gauge of Gauge.t
  | I_histogram of Histogram.t
  | I_probe of (unit -> float)

module Registry = struct
  type t = {
    instruments : (string, instrument) Hashtbl.t;
    mutable sinks : sink list;
    mutable clock : unit -> float;
    mutable next_span : int;
  }

  let create () =
    { instruments = Hashtbl.create 64;
      sinks = [];
      clock = Sys.time;
      next_span = 1 }

  let set_clock t clock = t.clock <- clock
  let now t = t.clock ()

  let kind_error name =
    invalid_arg
      (Printf.sprintf "Obs.Registry: %S already exists with another kind" name)

  let counter t name =
    match Hashtbl.find_opt t.instruments name with
    | Some (I_counter c) -> c
    | Some _ -> kind_error name
    | None ->
      let c = { Counter.c_name = name; c_value = 0 } in
      Hashtbl.replace t.instruments name (I_counter c);
      c

  let gauge t name =
    match Hashtbl.find_opt t.instruments name with
    | Some (I_gauge g) -> g
    | Some _ -> kind_error name
    | None ->
      let g = { Gauge.g_name = name; g_value = 0. } in
      Hashtbl.replace t.instruments name (I_gauge g);
      g

  let default_edges =
    [ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1_000.; 2_000.; 5_000.;
      10_000.; 20_000.; 50_000.; 100_000.; 200_000.; 500_000.; 1_000_000. ]

  let histogram ?(edges = default_edges) t name =
    match Hashtbl.find_opt t.instruments name with
    | Some (I_histogram h) -> h
    | Some _ -> kind_error name
    | None ->
      if edges = [] then invalid_arg "Obs.Registry.histogram: no edges";
      let rec increasing = function
        | a :: (b :: _ as rest) ->
          if a >= b then
            invalid_arg "Obs.Registry.histogram: edges not increasing"
          else increasing rest
        | [ _ ] | [] -> ()
      in
      increasing edges;
      let edges = Array.of_list edges in
      let h =
        { Histogram.h_name = name;
          edges;
          counts = Array.make (Array.length edges + 1) 0;
          h_sum = 0.;
          h_count = 0 }
      in
      Hashtbl.replace t.instruments name (I_histogram h);
      h

  let probe t name f = Hashtbl.replace t.instruments name (I_probe f)

  let remove t name = Hashtbl.remove t.instruments name

  let read = function
    | I_counter c -> Counter_v (Counter.value c)
    | I_gauge g -> Gauge_v (Gauge.value g)
    | I_probe f -> Gauge_v (f ())
    | I_histogram h ->
      let pairs = Histogram.buckets h in
      Histogram_v
        { h_edges = List.filter_map
              (fun (e, _) -> if Float.is_finite e then Some e else None)
              pairs;
          h_counts = List.map snd pairs;
          h_sum = Histogram.sum h;
          h_count = Histogram.count h }

  let find t name = Option.map read (Hashtbl.find_opt t.instruments name)

  let snapshot t =
    Hashtbl.fold (fun name i acc -> (name, read i) :: acc) t.instruments []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)

  let zero t =
    Hashtbl.iter
      (fun _ i ->
         match i with
         | I_counter c -> c.Counter.c_value <- 0
         | I_gauge g -> g.Gauge.g_value <- 0.
         | I_histogram h ->
           Array.fill h.Histogram.counts 0 (Array.length h.Histogram.counts) 0;
           h.Histogram.h_sum <- 0.;
           h.Histogram.h_count <- 0
         | I_probe _ -> ())
      t.instruments

  let attach t sink = t.sinks <- t.sinks @ [ sink ]

  let detach t sink = t.sinks <- List.filter (fun s -> s != sink) t.sinks

  let tracing t = t.sinks <> []
end

let emit (t : Registry.t) ev =
  match t.Registry.sinks with
  | [] -> ()
  | sinks -> List.iter (fun s -> deliver s ev) sinks

let point t ?in_span name attrs =
  if Registry.tracing t then
    emit t
      (Point
         { name;
           at = Registry.now t;
           in_span = Option.map (fun s -> s.span_id) in_span;
           attrs })

let span_open (t : Registry.t) ?parent ?(attrs = []) name =
  let id = t.Registry.next_span in
  t.Registry.next_span <- id + 1;
  let span =
    { span_id = id;
      span_parent = Option.map (fun s -> s.span_id) parent;
      span_name = name }
  in
  if Registry.tracing t then
    emit t (Span_open { span; at = Registry.now t; attrs });
  span

let span_close t ?(attrs = []) span =
  if Registry.tracing t then
    emit t (Span_close { span; at = Registry.now t; attrs })

let with_span t ?parent name f =
  let span = span_open t ?parent name in
  match f span with
  | v ->
    span_close t span;
    v
  | exception e ->
    span_close t ~attrs:[ ("error", Json.Bool true) ] span;
    raise e
