(** Table latches.

    The synchronization step latches the source tables for one final
    log propagation iteration (paper, Sec. 3.4): while a table is
    latched, ongoing transactions attempting to operate on it pause.
    Latches are short-lived and exclusive; they are held by a process
    id (the transformation), not by a transaction.

    A latch covers either the whole table or one {e hash shard} of it:
    a sharded executor quiescing a partition latches only that shard,
    and user operations whose key hashes elsewhere proceed
    unblocked. Whole-table and shard latches conflict with each other;
    two different partitionings of the same table conflict too (the
    shard index means nothing across counts). *)

type t

type holder = int

val create : unit -> t

val try_latch : t -> holder:holder -> table:string -> bool
(** [true] if acquired (or already held by [holder]). Succeeds over an
    existing shard latch only when every held shard belongs to
    [holder] (the latch is promoted to whole-table). *)

val unlatch : t -> holder:holder -> table:string -> unit
(** @raise Invalid_argument if [holder] does not hold the whole-table
    latch. *)

val try_latch_shard :
  t -> holder:holder -> table:string -> shards:int -> shard:int -> bool
(** Latch shard [shard] of [table] under a [shards]-way partitioning.
    [true] if acquired (or already held by [holder], including via a
    whole-table latch). Fails when another holder has the whole table,
    the same shard, or any shard under a different partition count.
    @raise Invalid_argument if [shard] is out of range. *)

val unlatch_shard : t -> holder:holder -> table:string -> shard:int -> unit
(** @raise Invalid_argument if [holder] does not hold that shard. *)

val is_latched : t -> table:string -> bool
(** Some latch — whole-table or any shard — is held on [table]. *)

val latched_by : t -> table:string -> holder option
(** The whole-table holder, or the holder of the lowest held shard. *)

val blocking_holder :
  t -> table:string -> key_hash:int option -> holder option
(** The holder blocking an operation on [table], if any.
    [key_hash = Some h] is the operation's key hash ([Row.Key.hash]):
    a whole-table latch always blocks; a shard latch blocks only when
    [h] falls in a held shard under the latch's own partition count
    (the same [hash mod shards] function the storage layer uses).
    [key_hash = None] means the key is unknown; any held latch
    blocks. *)

val latched_tables : t -> holder:holder -> string list
(** Tables on which [holder] holds the whole-table latch or at least
    one shard. *)
