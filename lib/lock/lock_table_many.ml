(* Atomic multi-resource acquisition: used by the non-blocking-commit
   synchronization strategy, where one user operation must lock the
   record in its own table AND the corresponding records in the other
   schema version (paper, Sec. 4.3: "If a transaction cannot get a lock
   on all implicated records in all tables, it is not allowed to go
   forward with the operation"). *)

open Nbsc_value

type request = {
  table : string;
  key : Row.Key.t;
  lock : Compat.lock;
}

let acquire_all t ~owner requests =
  (* Dry-run: collect every conflict before granting anything. *)
  let blockers =
    List.concat_map
      (fun r ->
         List.filter_map
           (fun (o, held) ->
              if o = owner then None
              else if Compat.compatible held r.lock then None
              else Some o)
           (Lock_table.holders t ~table:r.table ~key:r.key))
      requests
    |> List.sort_uniq Int.compare
  in
  if blockers <> [] then Lock_table.Blocked blockers
  else begin
    (* Grant loop with backout. The dry run found no conflicts and
       nothing interleaves between the check and the grant, so a
       [Blocked] here should be impossible — but "should" is not a
       crash warrant in a lock manager. If it happens anyway (a
       compatibility quirk the dry run mis-modelled), release only the
       locks this call newly granted — resources the owner already
       held before the call must survive the backout — and report the
       conflict instead of tearing the process down. *)
    let held_before =
      List.map
        (fun r -> Lock_table.holds_any t ~owner ~table:r.table ~key:r.key)
        requests
    in
    let rec grant granted = function
      | [] -> Lock_table.Granted
      | (r, was_held) :: rest ->
        (match Lock_table.acquire t ~owner ~table:r.table ~key:r.key r.lock with
         | Lock_table.Granted -> grant ((r, was_held) :: granted) rest
         | Lock_table.Blocked owners ->
           List.iter
             (fun (g, was_held) ->
                if not was_held then
                  Lock_table.release t ~owner ~table:g.table ~key:g.key)
             granted;
           Lock_table.Blocked owners)
    in
    grant [] (List.combine requests held_before)
  end
