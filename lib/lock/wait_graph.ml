open Nbsc_value
module Obs = Nbsc_obs.Obs

type owner = int

type policy =
  | Wait_die
  | Wound_wait
  | Youngest_in_cycle

type verdict =
  | Wait
  | Die of owner list
  | Wound of owner

type stats = {
  waits : int;
  cycles : int;
  victims : int;
  max_queue : int;
}

module Res = struct
  type t = { table : string; key : Row.Key.t }

  let equal a b = String.equal a.table b.table && Row.Key.equal a.key b.key
  let hash r = Hashtbl.hash (r.table, Row.Key.hash r.key)
end

module Rtbl = Hashtbl.Make (Res)

type entry = { w_owner : owner; mutable w_lock : Compat.lock }

type t = {
  mutable policy : policy;
  queues : entry list ref Rtbl.t;  (* head = front of the FIFO *)
  queued_on : (owner, Res.t list ref) Hashtbl.t;
  waits_for : (owner, owner list) Hashtbl.t;
  n_waits : Obs.Counter.t;
  n_cycles : Obs.Counter.t;
  n_victims : Obs.Counter.t;
  max_queue : Obs.Gauge.t;
}

let create ?(policy = Youngest_in_cycle) ?obs () =
  (* Counters live in the observability registry — the caller's, so
     they show up in Db snapshots, or a private one otherwise. *)
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  {
    policy;
    queues = Rtbl.create 64;
    queued_on = Hashtbl.create 64;
    waits_for = Hashtbl.create 64;
    n_waits = Obs.Registry.counter obs "lock.waits";
    n_cycles = Obs.Registry.counter obs "lock.cycles";
    n_victims = Obs.Registry.counter obs "lock.victims";
    max_queue = Obs.Registry.gauge obs "lock.max_queue";
  }

let policy t = t.policy
let set_policy t p = t.policy <- p

(* ---- queue maintenance ------------------------------------------- *)

let queue_of t res = try Rtbl.find t.queues res with Not_found -> ref []

let drop_from_queue t res owner =
  match Rtbl.find_opt t.queues res with
  | None -> ()
  | Some q ->
    q := List.filter (fun e -> e.w_owner <> owner) !q;
    if !q = [] then Rtbl.remove t.queues res

let forget_queues t owner =
  match Hashtbl.find_opt t.queued_on owner with
  | None -> ()
  | Some resources ->
    List.iter (fun res -> drop_from_queue t res owner) !resources;
    Hashtbl.remove t.queued_on owner

let enqueue t res owner lock =
  let q = queue_of t res in
  (match List.find_opt (fun e -> e.w_owner = owner) !q with
   | Some e -> e.w_lock <- lock  (* keep FIFO position, refresh the ask *)
   | None ->
     q := !q @ [ { w_owner = owner; w_lock = lock } ];
     let depth = float_of_int (List.length !q) in
     if depth > Obs.Gauge.value t.max_queue then
       Obs.Gauge.set t.max_queue depth);
  if not (Rtbl.mem t.queues res) then Rtbl.add t.queues res q;
  let on =
    match Hashtbl.find_opt t.queued_on owner with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.queued_on owner r;
      r
  in
  if not (List.exists (Res.equal res) !on) then on := res :: !on

(* Re-register [owner]'s pending requests: keep FIFO positions on
   resources still asked for, leave queues for resources it no longer
   wants (sim clients re-draw keys between retries). *)
let requeue t owner (requests : Lock_table_many.request list) =
  let wanted =
    List.map (fun (r : Lock_table_many.request) ->
        ({ Res.table = r.table; key = r.key }, r.lock))
      requests
  in
  (match Hashtbl.find_opt t.queued_on owner with
   | None -> ()
   | Some on ->
     let keep, drop =
       List.partition
         (fun res -> List.exists (fun (w, _) -> Res.equal w res) wanted)
         !on
     in
     List.iter (fun res -> drop_from_queue t res owner) drop;
     on := keep);
  List.iter (fun (res, lock) -> enqueue t res owner lock) wanted

(* ---- waits-for edges --------------------------------------------- *)

let edges t node = try Hashtbl.find t.waits_for node with Not_found -> []

let set_edges t node blockers =
  if blockers = [] then Hashtbl.remove t.waits_for node
  else Hashtbl.replace t.waits_for node blockers

let drop_node t owner =
  Hashtbl.remove t.waits_for owner;
  (* Also disappear as a blocker: a finished transaction holds nothing,
     so edges pointing at it are stale. *)
  let stale =
    Hashtbl.fold
      (fun w bs acc -> if List.mem owner bs then (w, bs) :: acc else acc)
      t.waits_for []
  in
  List.iter
    (fun (w, bs) -> set_edges t w (List.filter (fun b -> b <> owner) bs))
    stale

(* Path from [start] back to [start], as the list of nodes on the
   cycle; None if no such cycle. Graphs here are tiny (one node per
   blocked transaction), so a plain DFS is plenty. *)
let find_cycle t ~start =
  let seen = Hashtbl.create 16 in
  let rec dfs node path =
    if Hashtbl.mem seen node then None
    else begin
      Hashtbl.add seen node ();
      let succs = edges t node in
      if List.exists (Int.equal start) succs then Some (List.rev (node :: path))
      else
        List.fold_left
          (fun acc s ->
             match acc with Some _ -> acc | None -> dfs s (node :: path))
          None succs
    end
  in
  dfs start []

let on_granted t ~owner =
  Hashtbl.remove t.waits_for owner;
  forget_queues t owner

let remove_txn t ~owner =
  drop_node t owner;
  forget_queues t owner

(* ---- the verdict ------------------------------------------------- *)

let block t ~waiter ~requests ~blockers =
  Obs.Counter.incr t.n_waits;
  requeue t waiter requests;
  match t.policy with
  | Wait_die ->
    (* Older blockers win: a waiter younger than any holder restarts.
       No cycle can ever form (waits only point at younger ids). *)
    if List.exists (fun b -> b < waiter) blockers then begin
      Obs.Counter.incr t.n_victims;
      remove_txn t ~owner:waiter;
      Die blockers
    end
    else begin
      set_edges t waiter blockers;
      Wait
    end
  | Wound_wait ->
    (* Older waiters kill younger holders in their way, one per verdict
       (the caller retries and comes back for the next). *)
    let prey = List.filter (fun b -> b > waiter) blockers in
    (match prey with
     | [] ->
       set_edges t waiter blockers;
       Wait
     | _ ->
       Obs.Counter.incr t.n_victims;
       set_edges t waiter blockers;
       Wound (List.fold_left max min_int prey))
  | Youngest_in_cycle ->
    set_edges t waiter blockers;
    (match find_cycle t ~start:waiter with
     | None -> Wait
     | Some cycle ->
       Obs.Counter.incr t.n_cycles;
       Obs.Counter.incr t.n_victims;
       let victim = List.fold_left max min_int cycle in
       if victim = waiter then begin
         remove_txn t ~owner:waiter;
         Die cycle
       end
       else Wound victim)

(* ---- fairness ---------------------------------------------------- *)

let queued_ahead t ~owner ~live ~holds requests =
  List.concat_map
    (fun (r : Lock_table_many.request) ->
       if holds r then []
       else begin
         let res = { Res.table = r.table; key = r.key } in
         match Rtbl.find_opt t.queues res with
         | None -> []
         | Some q ->
           (* Prune entries of finished transactions as we pass. *)
           q := List.filter (fun e -> live e.w_owner) !q;
           if !q = [] then begin
             Rtbl.remove t.queues res;
             []
           end
           else begin
             let rec ahead acc = function
               | [] -> List.rev acc
               | e :: _ when e.w_owner = owner -> List.rev acc
               | e :: rest -> ahead (e :: acc) rest
             in
             ahead [] !q
             |> List.filter_map (fun e ->
                 if Compat.compatible e.w_lock r.lock then None
                 else Some e.w_owner)
           end
       end)
    requests
  |> List.sort_uniq Int.compare

(* ---- introspection ----------------------------------------------- *)

let waiters t =
  Hashtbl.fold (fun w _ acc -> w :: acc) t.waits_for []
  |> List.sort Int.compare

let blockers_of t ~owner = edges t owner

let acyclic t =
  not
    (List.exists
       (fun w -> find_cycle t ~start:w <> None)
       (waiters t))

let stats t =
  {
    waits = Obs.Counter.value t.n_waits;
    cycles = Obs.Counter.value t.n_cycles;
    victims = Obs.Counter.value t.n_victims;
    max_queue = int_of_float (Obs.Gauge.value t.max_queue);
  }

let pp_stats ppf s =
  Format.fprintf ppf "waits=%d cycles=%d victims=%d max_queue=%d" s.waits
    s.cycles s.victims s.max_queue

let pp ppf t =
  Format.fprintf ppf "@[<v>waits-for:";
  List.iter
    (fun w ->
       Format.fprintf ppf "@,  %d -> %s" w
         (String.concat "," (List.map string_of_int (edges t w))))
    (waiters t);
  Format.fprintf ppf "@,queues:";
  Rtbl.iter
    (fun res q ->
       Format.fprintf ppf "@,  %s/%s: %s" res.Res.table
         (Format.asprintf "%a" Row.Key.pp res.Res.key)
         (String.concat ","
            (List.map (fun e -> string_of_int e.w_owner) !q)))
    t.queues;
  Format.fprintf ppf "@]"
