type holder = int

(* A table is latched either wholesale (the transformation's final
   synchronization iteration) or one hash shard at a time (sharded
   executors quiescing a partition while the rest of the table keeps
   serving user operations). An entry with no held slot is removed, so
   [Hashtbl.mem] remains "some latch is held". *)
type entry =
  | Whole of holder
  | Shards of { shards : int; held : holder option array }

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let shards_all_free_or_held_by held ~holder =
  Array.for_all (function None -> true | Some h -> h = holder) held

let try_latch t ~holder ~table =
  match Hashtbl.find_opt t table with
  | None ->
    Hashtbl.replace t table (Whole holder);
    true
  | Some (Whole h) -> h = holder
  | Some (Shards { held; _ }) ->
    (* Promote to a whole-table latch when nobody else holds a shard. *)
    if shards_all_free_or_held_by held ~holder then begin
      Hashtbl.replace t table (Whole holder);
      true
    end
    else false

let unlatch t ~holder ~table =
  match Hashtbl.find_opt t table with
  | Some (Whole h) when h = holder -> Hashtbl.remove t table
  | Some _ | None ->
    invalid_arg (Printf.sprintf "Latch.unlatch: %d does not hold %s" holder table)

let try_latch_shard t ~holder ~table ~shards ~shard =
  if shards <= 0 || shard < 0 || shard >= shards then
    invalid_arg
      (Printf.sprintf "Latch.try_latch_shard: shard %d of %d" shard shards);
  match Hashtbl.find_opt t table with
  | None ->
    let held = Array.make shards None in
    held.(shard) <- Some holder;
    Hashtbl.replace t table (Shards { shards; held });
    true
  | Some (Whole h) -> h = holder
  | Some (Shards s) ->
    (* Two partitionings of the same table cannot co-exist: the shard
       index means nothing across different counts. *)
    if s.shards <> shards then false
    else begin
      match s.held.(shard) with
      | None ->
        s.held.(shard) <- Some holder;
        true
      | Some h -> h = holder
    end

let unlatch_shard t ~holder ~table ~shard =
  match Hashtbl.find_opt t table with
  | Some (Shards s)
    when shard >= 0 && shard < s.shards && s.held.(shard) = Some holder ->
    s.held.(shard) <- None;
    if Array.for_all (( = ) None) s.held then Hashtbl.remove t table
  | Some _ | None ->
    invalid_arg
      (Printf.sprintf "Latch.unlatch_shard: %d does not hold %s/%d" holder
         table shard)

let is_latched t ~table = Hashtbl.mem t table

let first_held held =
  Array.fold_left
    (fun acc slot -> match acc with Some _ -> acc | None -> slot)
    None held

let latched_by t ~table =
  match Hashtbl.find_opt t table with
  | None -> None
  | Some (Whole h) -> Some h
  | Some (Shards { held; _ }) -> first_held held

let blocking_holder t ~table ~key_hash =
  match Hashtbl.find_opt t table with
  | None -> None
  | Some (Whole h) -> Some h
  | Some (Shards { shards; held }) ->
    (match key_hash with
     | None ->
       (* Key unknown: any held shard blocks, conservatively. *)
       first_held held
     | Some h ->
       (* Same partition function as [Table.shard_of_key]. *)
       held.((h land max_int) mod shards))

let latched_tables t ~holder =
  Hashtbl.fold
    (fun table entry acc ->
       match entry with
       | Whole h when h = holder -> table :: acc
       | Whole _ -> acc
       | Shards { held; _ } ->
         if Array.exists (( = ) (Some holder)) held then table :: acc else acc)
    t []
