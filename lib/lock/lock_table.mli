(** Record-lock table.

    Tracks granted record locks per (table, key) resource. The engine
    is cooperative (single OS thread, interleaving driven by callers or
    the simulator), so [acquire] never sleeps: it either grants or
    reports the blockers, and the caller decides to retry, wait in the
    simulator, or die (wait-die is implemented by {!Nbsc_txn}).

    Lock {e transfer} for the non-blocking synchronization strategies is
    [acquire] with a [Source _] provenance — compatibility then follows
    the Figure 2 matrix (see {!Compat.compatible}). *)

open Nbsc_value

type owner = int
(** Transaction id. *)

type t

type outcome =
  | Granted
  | Blocked of owner list  (** distinct conflicting owners *)

val create : unit -> t

val acquire :
  t -> owner:owner -> table:string -> key:Row.Key.t -> Compat.lock -> outcome
(** Re-acquiring an equal-or-weaker lock already held is a no-op grant;
    S-to-X upgrade succeeds iff no other owner holds a conflicting
    lock. A transaction's own locks never block it. *)

val transfer :
  t -> owner:owner -> table:string -> key:Row.Key.t -> Compat.lock -> bool
(** Unconditional grant, used only for lock {e transfer} by the log
    propagator: a transferred lock logically predates any native lock
    (the source operation executed first), so compatibility is not
    re-checked. Outside the narrow case of a compensating operation
    materializing a record a new transaction already locked, this is
    equivalent to [acquire] returning [Granted]. Returns [true] iff the
    call added coverage — the owner did not already hold a lock of the
    same provenance at least as strong (repeated transfers during
    re-propagation return [false] without rewriting the grant). *)

val holds :
  t -> owner:owner -> table:string -> key:Row.Key.t -> Compat.lock -> bool
(** Whether [owner] already holds a lock at least as strong (same
    provenance class, mode >= requested). *)

val holds_any : t -> owner:owner -> table:string -> key:Row.Key.t -> bool
(** Whether [owner] holds {e any} lock on the resource, of any mode or
    provenance — used by the wait-queue fairness check to exempt
    re-acquisition and upgrades from queueing behind other waiters. *)

val holders : t -> table:string -> key:Row.Key.t -> (owner * Compat.lock) list

val release : t -> owner:owner -> table:string -> key:Row.Key.t -> unit
(** Drop all locks [owner] has on the resource. *)

val release_owner : t -> owner:owner -> unit
(** Drop every lock of this owner (commit/abort). *)

val release_owner_where :
  t -> owner:owner -> (table:string -> lock:Compat.lock -> bool) -> unit
(** Selective release, e.g. dropping only the transferred locks a
    propagated abort record frees (paper, Sec. 3.4). *)

val locks_of_owner : t -> owner:owner -> (string * Row.Key.t * Compat.lock) list

val locked_resources : t -> table:string -> (Row.Key.t * owner * Compat.lock) list
(** Every granted lock on [table] (for tests and for lock transfer). *)

val locked_resources_in :
  t -> tables:string list -> (string * Row.Key.t * owner * Compat.lock) list
(** Every granted lock on any of [tables], gathered in a single pass
    over the grants table — callers with several tables of interest
    (lock transfer across a transformation's sources) must not pay one
    full fold per table. *)

val count : t -> int
(** Total granted locks (for metrics). *)
