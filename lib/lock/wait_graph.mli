(** Waits-for graph and per-resource FIFO wait queues.

    The lock table ({!Lock_table}) is cooperative: a conflicting
    request returns [Blocked] and the caller retries. Left alone, that
    model livelocks on lock cycles — two transactions each retrying a
    request the other blocks forever — and starves late arrivals on hot
    records (every retry races the whole crowd again). This module
    gives the engine the two structures that defend against both:

    - a {e waits-for graph}: one edge set per blocked transaction,
      replaced on every block, removed on grant or transaction end, so
      cycle detection runs against current waits only;
    - {e per-resource FIFO wait queues}: the order transactions first
      blocked on a resource. A queued waiter's pending request lets the
      caller refuse {e barging} — a newcomer whose request conflicts
      with an earlier waiter's is told to wait behind it, so writers
      starve neither under reader streams nor under retry races.

    Victim selection is pluggable ({!policy}): the classic
    prevention schemes (wait-die, wound-wait, which never need the
    graph) and detection proper (cycle search on block, youngest
    transaction in the cycle dies). The verdicts only {e name} the
    victim; rollback belongs to the transaction manager, which owns the
    undo machinery. *)

type owner = int
(** Transaction id; ids increase with age ({!Nbsc_txn} hands them out),
    so [a < b] means [a] is older. *)

type policy =
  | Wait_die
      (** an older waiter waits; a younger waiter dies (no graph needed,
          no wounds — restarts are the waiter's own) *)
  | Wound_wait
      (** an older waiter wounds (kills) younger lock holders in its
          way; a younger waiter waits *)
  | Youngest_in_cycle
      (** detection proper: block freely, search for a cycle through
          the new edge, kill the youngest transaction on it — waits
          that form no cycle never abort anyone *)

type verdict =
  | Wait  (** no deadlock (yet): stay blocked and retry *)
  | Die of owner list
      (** the waiter itself is the victim; the payload is the cycle
          (detection) or the conflicting owners (wait-die) *)
  | Wound of owner
      (** this {e other} transaction is the victim; the caller rolls it
          back and retries the request *)

type stats = {
  waits : int;      (** block events registered *)
  cycles : int;     (** cycles found by detection *)
  victims : int;    (** transactions sentenced (Die or Wound) *)
  max_queue : int;  (** deepest FIFO wait queue ever observed *)
}

type t

val create : ?policy:policy -> ?obs:Nbsc_obs.Obs.Registry.t -> unit -> t
(** Default policy: {!Youngest_in_cycle} — pure detection preserves the
    engine's historical behaviour (a block with no cycle is still just
    [`Blocked]).

    The graph's counters ([lock.waits], [lock.cycles], [lock.victims],
    [lock.max_queue]) register in [obs] when given (so they appear in
    the database's observability snapshot), or in a private registry
    otherwise; {!stats} reads them back either way. *)

val policy : t -> policy
val set_policy : t -> policy -> unit

val block :
  t -> waiter:owner -> requests:Lock_table_many.request list ->
  blockers:owner list -> verdict
(** Register that [waiter] is blocked on [requests] (the full atomic
    multi-resource set — base lock plus every extra-lock-hook request)
    by [blockers], replacing any previous registration, and judge the
    wait under the current policy. The waiter keeps its FIFO position
    in queues it was already in; queues for resources it no longer
    requests are left. A [Die] verdict unregisters the waiter (it is
    about to abort, not wait). *)

val queued_ahead :
  t -> owner:owner -> live:(owner -> bool) ->
  holds:(Lock_table_many.request -> bool) ->
  Lock_table_many.request list -> owner list
(** Anti-barging check, consulted {e before} the lock table: the queued
    waiters ahead of [owner] (all of them, if [owner] is not queued)
    whose pending lock conflicts with one of [requests] and whose
    transaction [live] confirms still active. Resources where [holds]
    says [owner] already has a lock are exempt — re-acquisition and
    upgrades must not queue behind their own lock. Empty means proceed
    to the lock table. *)

val on_granted : t -> owner:owner -> unit
(** The owner's request succeeded: drop its edges and queue entries. *)

val remove_txn : t -> owner:owner -> unit
(** The transaction finished (commit or abort): drop its edges and
    queue entries. Called by the manager for every transaction end, so
    queues only ever name live transactions. *)

val waiters : t -> owner list
(** Currently blocked transactions (have outgoing edges). *)

val blockers_of : t -> owner:owner -> owner list
(** The current wait set of [owner] (empty if not blocked). *)

val acyclic : t -> bool
(** Whether the waits-for graph is currently free of cycles — after
    every resolution this must hold (property tests). *)

val stats : t -> stats

val pp_stats : Format.formatter -> stats -> unit

val pp : Format.formatter -> t -> unit
(** Dump edges and queues (debugging). *)
