open Nbsc_value

type owner = int

module Resource = struct
  type t = { table : string; key : Row.Key.t }

  let equal a b = String.equal a.table b.table && Row.Key.equal a.key b.key
  let hash r = Hashtbl.hash (r.table, Row.Key.hash r.key)
end

module Rtbl = Hashtbl.Make (Resource)

type t = {
  grants : (owner * Compat.lock) list Rtbl.t;
  by_owner : (owner, Resource.t list ref) Hashtbl.t;
}

type outcome =
  | Granted
  | Blocked of owner list

let create () = { grants = Rtbl.create 256; by_owner = Hashtbl.create 64 }

let grants_on t res = try Rtbl.find t.grants res with Not_found -> []

let remember_owner t owner res =
  let resources =
    match Hashtbl.find_opt t.by_owner owner with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add t.by_owner owner r;
      r
  in
  if not (List.exists (Resource.equal res) !resources) then
    resources := res :: !resources

let stronger (a : Compat.mode) (b : Compat.mode) =
  match a, b with Compat.X, _ -> true | Compat.S, Compat.S -> true | _ -> false

let acquire t ~owner ~table ~key (lock : Compat.lock) =
  let res = { Resource.table; key } in
  let grants = grants_on t res in
  let conflicts =
    List.filter_map
      (fun (o, l) ->
         if o = owner then None
         else if Compat.compatible l lock then None
         else Some o)
      grants
    |> List.sort_uniq Int.compare
  in
  if conflicts <> [] then Blocked conflicts
  else begin
    (* Grant: fold into an existing lock of the same provenance if one
       exists (possibly upgrading its mode). *)
    let upgraded = ref false in
    let grants =
      List.map
        (fun (o, l) ->
           if o = owner && l.Compat.provenance = lock.Compat.provenance then begin
             upgraded := true;
             if stronger l.Compat.mode lock.Compat.mode then (o, l)
             else (o, lock)
           end
           else (o, l))
        grants
    in
    let grants = if !upgraded then grants else (owner, lock) :: grants in
    Rtbl.replace t.grants res grants;
    remember_owner t owner res;
    Granted
  end

let transfer t ~owner ~table ~key (lock : Compat.lock) =
  let res = { Resource.table; key } in
  let grants = grants_on t res in
  (* Fast path: already covered (same provenance, mode at least as
     strong). Re-propagation keeps transferring the same locks, so this
     is the common case on the hot path — no rewrite, no allocation. *)
  if
    List.exists
      (fun (o, l) ->
         o = owner
         && l.Compat.provenance = lock.Compat.provenance
         && stronger l.Compat.mode lock.Compat.mode)
      grants
  then false
  else begin
    let upgraded = ref false in
    let grants =
      List.map
        (fun (o, l) ->
           if o = owner && l.Compat.provenance = lock.Compat.provenance then begin
             upgraded := true;
             (o, lock)
           end
           else (o, l))
        grants
    in
    let grants = if !upgraded then grants else (owner, lock) :: grants in
    Rtbl.replace t.grants res grants;
    remember_owner t owner res;
    true
  end

let holds t ~owner ~table ~key (lock : Compat.lock) =
  let res = { Resource.table; key } in
  List.exists
    (fun (o, l) ->
       o = owner
       && l.Compat.provenance = lock.Compat.provenance
       && stronger l.Compat.mode lock.Compat.mode)
    (grants_on t res)

let holds_any t ~owner ~table ~key =
  List.exists (fun (o, _) -> o = owner) (grants_on t { Resource.table; key })

let holders t ~table ~key =
  grants_on t { Resource.table; key }

let drop_resource_for t res keep =
  let grants = List.filter keep (grants_on t res) in
  if grants = [] then Rtbl.remove t.grants res
  else Rtbl.replace t.grants res grants

let release t ~owner ~table ~key =
  let res = { Resource.table; key } in
  drop_resource_for t res (fun (o, _) -> o <> owner)

let release_owner_where t ~owner pred =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> ()
  | Some resources ->
    let kept = ref [] in
    List.iter
      (fun res ->
         drop_resource_for t res (fun (o, l) ->
             o <> owner || not (pred ~table:res.Resource.table ~lock:l));
         if List.exists (fun (o, _) -> o = owner) (grants_on t res) then
           kept := res :: !kept)
      !resources;
    if !kept = [] then Hashtbl.remove t.by_owner owner
    else resources := !kept

let release_owner t ~owner =
  release_owner_where t ~owner (fun ~table:_ ~lock:_ -> true)

let locks_of_owner t ~owner =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> []
  | Some resources ->
    List.concat_map
      (fun res ->
         List.filter_map
           (fun (o, l) ->
              if o = owner then Some (res.Resource.table, res.Resource.key, l)
              else None)
           (grants_on t res))
      !resources

let locked_resources t ~table =
  Rtbl.fold
    (fun res grants acc ->
       if String.equal res.Resource.table table then
         List.fold_left
           (fun acc (o, l) -> (res.Resource.key, o, l) :: acc)
           acc grants
       else acc)
    t.grants []

let locked_resources_in t ~tables =
  let wanted = Hashtbl.create (List.length tables) in
  List.iter (fun table -> Hashtbl.replace wanted table ()) tables;
  Rtbl.fold
    (fun res grants acc ->
       if Hashtbl.mem wanted res.Resource.table then
         List.fold_left
           (fun acc (o, l) ->
              (res.Resource.table, res.Resource.key, o, l) :: acc)
           acc grants
       else acc)
    t.grants []

let count t = Rtbl.fold (fun _ grants acc -> acc + List.length grants) t.grants 0
