type t =
  [ `Io of string
  | `Corrupt of string
  | `Active_transactions of int list
  | `Invalid of string
  | `Conflict of string
  | `Job_failed of string * string
  | `Msg of string ]

exception Error of t

let fail e = raise (Error e)

let msgf fmt = Format.kasprintf (fun m -> `Msg m) fmt
let invalidf fmt = Format.kasprintf (fun m -> `Invalid m) fmt
let corruptf fmt = Format.kasprintf (fun m -> `Corrupt m) fmt

let of_exn = function
  | Error e -> e
  | Failure m -> `Msg m
  | Invalid_argument m -> `Invalid m
  | Sys_error m -> `Io m
  | e -> raise e

let protect f =
  match f () with
  | v -> Ok v
  | exception ((Error _ | Failure _ | Invalid_argument _ | Sys_error _) as e) ->
    Result.Error (of_exn e)

let to_string = function
  | `Io m -> "io error: " ^ m
  | `Corrupt m -> "corrupt: " ^ m
  | `Active_transactions txns ->
    Printf.sprintf "%d transaction(s) still active: [%s]" (List.length txns)
      (String.concat "; " (List.map string_of_int txns))
  | `Invalid m -> "invalid: " ^ m
  | `Conflict m -> "conflict: " ^ m
  | `Job_failed (job, reason) -> Printf.sprintf "job %s failed: %s" job reason
  | `Msg m -> m

let pp ppf e = Format.pp_print_string ppf (to_string e)
