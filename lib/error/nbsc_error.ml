type corruption = {
  c_path : string option;
  c_line : int option;
  c_lsn : int option;
  c_expected_crc : string option;
  c_actual_crc : string option;
  c_reason : string;
}

type t =
  [ `Io of string
  | `Corrupt of corruption
  | `Disk_full of string
  | `Active_transactions of int list
  | `Invalid of string
  | `Conflict of string
  | `Job_failed of string * string
  | `Msg of string ]

exception Error of t

let fail e = raise (Error e)

let corruption ?path ?line ?lsn ?expected_crc ?actual_crc reason =
  { c_path = path; c_line = line; c_lsn = lsn; c_expected_crc = expected_crc;
    c_actual_crc = actual_crc; c_reason = reason }

let corrupt ?path ?line ?lsn ?expected_crc ?actual_crc reason =
  `Corrupt (corruption ?path ?line ?lsn ?expected_crc ?actual_crc reason)

let msgf fmt = Format.kasprintf (fun m -> `Msg m) fmt
let invalidf fmt = Format.kasprintf (fun m -> `Invalid m) fmt
let corruptf fmt = Format.kasprintf (fun m -> corrupt m) fmt

let of_exn = function
  | Error e -> e
  | Failure m -> `Msg m
  | Invalid_argument m -> `Invalid m
  | Sys_error m -> `Io m
  | e -> raise e

let protect f =
  match f () with
  | v -> Ok v
  | exception ((Error _ | Failure _ | Invalid_argument _ | Sys_error _) as e) ->
    Result.Error (of_exn e)

let corruption_to_string c =
  let ctx =
    List.filter_map Fun.id
      [ Option.map (fun p -> "file " ^ p) c.c_path;
        Option.map (fun l -> "line " ^ string_of_int l) c.c_line;
        Option.map (fun l -> "lsn " ^ string_of_int l) c.c_lsn;
        Option.map (fun e -> "expected crc " ^ e) c.c_expected_crc;
        Option.map (fun a -> "actual crc " ^ a) c.c_actual_crc ]
  in
  match ctx with
  | [] -> c.c_reason
  | _ -> Printf.sprintf "%s (%s)" c.c_reason (String.concat ", " ctx)

let to_string = function
  | `Io m -> "io error: " ^ m
  | `Corrupt c -> "corrupt: " ^ corruption_to_string c
  | `Disk_full m -> "disk full: " ^ m
  | `Active_transactions txns ->
    Printf.sprintf "%d transaction(s) still active: [%s]" (List.length txns)
      (String.concat "; " (List.map string_of_int txns))
  | `Invalid m -> "invalid: " ^ m
  | `Conflict m -> "conflict: " ^ m
  | `Job_failed (job, reason) -> Printf.sprintf "job %s failed: %s" job reason
  | `Msg m -> m

let pp ppf e = Format.pp_print_string ppf (to_string e)
