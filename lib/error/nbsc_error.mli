(** The one error currency of the engine and the transformation layer.

    Before this module, failures crossed layer boundaries in three
    disguises: [Failure _] exceptions (decode problems), [(_, string)
    result] (executor and job boundaries), and per-module polymorphic
    variants ([Persist.error], [Snapshot.error]). One caller-facing
    surface means one [to_string], one [pp], and pattern matches that
    keep working as modules narrow the set they can actually produce —
    every per-module error type is a subset of this variant.

    Exceptions still exist at the edges ([Invalid_argument] for
    programming-contract violations, {!Error} to tunnel a [t] through
    code that cannot return a [result]); {!of_exn} folds all of them
    back into a [t]. *)

type corruption = {
  c_path : string option;      (** which on-disk file *)
  c_line : int option;         (** 1-based line number in that file *)
  c_lsn : int option;          (** log sequence number, when decodable *)
  c_expected_crc : string option;  (** checksum the frame claimed (hex) *)
  c_actual_crc : string option;    (** checksum the payload has (hex) *)
  c_reason : string;
}
(** Structured context for a corruption report: enough to point a human
    (or [nbsc scrub]) at the exact damaged line. Every field except the
    reason is optional — corruption detected above the framing layer
    (e.g. a snapshot referencing an unknown table) has no CRC to cite. *)

type t =
  [ `Io of string             (** filesystem / WAL channel trouble *)
  | `Corrupt of corruption    (** undecodable or checksum-failed durable state *)
  | `Disk_full of string
      (** a durable append hit [ENOSPC]; the engine is degraded — reads
          and aborts proceed, new writes are refused until an append
          succeeds again *)
  | `Active_transactions of int list
      (** a sharp operation (snapshot, checkpoint) refused because
          these transactions are still running *)
  | `Invalid of string        (** rejected specification or argument *)
  | `Conflict of string       (** transaction-level refusal, rendered *)
  | `Job_failed of string * string  (** background job name, reason *)
  | `Msg of string ]          (** anything else, human-readable *)

exception Error of t
(** Carrier for contexts that cannot return a [result]. Raise with
    {!fail}; catch with {!protect} or {!of_exn}. *)

val fail : t -> 'a
(** [fail e] raises [Error e]. *)

val corruption :
  ?path:string -> ?line:int -> ?lsn:int -> ?expected_crc:string ->
  ?actual_crc:string -> string -> corruption
(** Build a {!corruption} record from a reason plus whatever context
    the detection site has. *)

val corrupt :
  ?path:string -> ?line:int -> ?lsn:int -> ?expected_crc:string ->
  ?actual_crc:string -> string -> [> `Corrupt of corruption ]
(** [`Corrupt] of {!corruption} — the usual construction. *)

val msgf : ('a, Format.formatter, unit, t) format4 -> 'a
(** Format a [`Msg]. *)

val invalidf : ('a, Format.formatter, unit, t) format4 -> 'a
(** Format an [`Invalid]. *)

val corruptf : ('a, Format.formatter, unit, t) format4 -> 'a
(** Format a context-free [`Corrupt] (reason only). *)

val of_exn : exn -> t
(** Fold the legacy carriers into a [t]: [Error e] unwraps to [e],
    [Failure m] and [Invalid_argument m] map to [`Msg]/[`Invalid],
    [Sys_error m] to [`Io]. Anything else re-raises (asserts and
    injected faults must not be swallowed). *)

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching the carriers {!of_exn} understands. *)

val corruption_to_string : corruption -> string
(** Render the reason followed by every context field present, e.g.
    ["checksum mismatch (file wal.nbsc, line 7, lsn 42, expected crc
    deadbeef, actual crc 0badf00d)"]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
