(** Executing parsed statements against a database.

    A session holds an optional explicit transaction (BEGIN/COMMIT) and
    any number of running transformations — several may be in flight at
    once as long as their table footprints are disjoint; TRANSFORM
    STEP/RUN drive them all concurrently through the database's job
    registry. Statements outside an explicit transaction auto-commit.
    SELECT reads without locks (read uncommitted) — the REPL is an
    inspection tool, not a client library; programs should use
    {!Nbsc_txn.Manager} directly. *)

open Nbsc_value
open Nbsc_core

type session

val create : Db.t -> session
val db : session -> Db.t

val transformations : session -> Db.Schema_change.handle list
(** The schema changes started by TRANSFORM statements (including
    completed ones), in start order. *)

type outcome =
  | Message of string
  | Rows of { header : string list; rows : Row.t list }

val exec : session -> Ast.statement -> (outcome, string) result

val exec_string : session -> string -> (outcome list, string) result
(** Parse and execute a ';'-separated script, stopping at the first
    error. *)

val render : outcome -> string
(** Human-readable rendering (aligned table for [Rows]). *)
