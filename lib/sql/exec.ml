open Nbsc_value
open Nbsc_storage
open Nbsc_txn
open Nbsc_core

module Sc = Db.Schema_change

type session = {
  sdb : Db.t;
  mutable txn : Manager.txn_id option;
  mutable tfs : Sc.handle list;  (* in start order *)
}

let create sdb = { sdb; txn = None; tfs = [] }
let db s = s.sdb
let transformations s = s.tfs

type outcome =
  | Message of string
  | Rows of { header : string list; rows : Row.t list }

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

let errf fmt = Format.kasprintf (fun m -> Error m) fmt

let mgr_err e = errf "%a" Manager.pp_error e

(* Run [f txn]; inside an explicit transaction use it, otherwise wrap
   in an auto-committed one. *)
let with_txn s f =
  let mgr = Db.manager s.sdb in
  match s.txn with
  | Some txn -> f txn
  | None ->
    let txn = Manager.begin_txn mgr in
    (match f txn with
     | Ok v ->
       (match Manager.commit mgr txn with
        | Ok () -> Ok v
        | Error e ->
          ignore (Manager.abort mgr txn);
          mgr_err e)
     | Error _ as e ->
       ignore (Manager.abort mgr txn);
       e)

let find_table s name =
  match Catalog.find_opt (Db.catalog s.sdb) name with
  | Some t -> Ok t
  | None -> errf "no such table %S" name

(* If the predicate pins every primary-key column with a top-level
   equality, the row set is at most one probe — no scan needed. *)
let key_probe schema pred =
  let rec equalities acc = function
    | Pred.Cmp (col, Pred.Eq, v) -> (col, v) :: acc
    | Pred.And (a, b) -> equalities (equalities acc a) b
    | Pred.True | Pred.False | Pred.Cmp _ | Pred.Is_null _ | Pred.Or _
    | Pred.Not _ -> acc
  in
  let eqs = equalities [] pred in
  let key_cols = Schema.key_names schema in
  if List.for_all (fun c -> List.mem_assoc c eqs) key_cols then
    Some (Row.make (List.map (fun c -> List.assoc c eqs) key_cols))
  else None

(* Range constraints [lo, hi] a predicate's top-level conjuncts place
   on one column, exploitable through a single-column ordered index. *)
let range_probe table pred =
  let rec conjuncts acc = function
    | Pred.And (a, b) -> conjuncts (conjuncts acc a) b
    | p -> p :: acc
  in
  let cs = conjuncts [] pred in
  let bounds col =
    List.fold_left
      (fun (lo, hi) c ->
         let tighter_lo lo cand =
           match lo with
           | Some (v, _) when Row.Key.compare v (fst cand) >= 0 -> lo
           | _ -> Some cand
         and tighter_hi hi cand =
           match hi with
           | Some (v, _) when Row.Key.compare v (fst cand) <= 0 -> hi
           | _ -> Some cand
         in
         match c with
         | Pred.Cmp (c', op, v) when String.equal c' col ->
           let k = Row.make [ v ] in
           (match op with
            | Pred.Eq -> (tighter_lo lo (k, true), tighter_hi hi (k, true))
            | Pred.Ge -> (tighter_lo lo (k, true), hi)
            | Pred.Gt -> (tighter_lo lo (k, false), hi)
            | Pred.Le -> (lo, tighter_hi hi (k, true))
            | Pred.Lt -> (lo, tighter_hi hi (k, false))
            | Pred.Ne -> (lo, hi))
         | _ -> (lo, hi))
      (None, None) cs
  in
  List.find_map
    (fun (index, columns) ->
       match columns with
       | [ col ] ->
         (match bounds col with
          | None, None -> None
          | lo, hi -> Some (Table.ordered_range table ~index ?lo ?hi ()))
       | _ -> None)
    (Table.ordered_index_definitions table)

(* Keys of the rows satisfying a predicate: a primary-key probe when
   possible, then an ordered-index range, then a lock-free scan (the
   subsequent per-key operations take the locks). *)
let matching_keys table pred =
  let schema = Table.schema table in
  let p = Pred.compile schema pred in
  match key_probe schema pred with
  | Some key ->
    (match Table.find table key with
     | Some record when p record.Record.row -> [ key ]
     | Some _ | None -> [])
  | None ->
    (match range_probe table pred with
     | Some candidates ->
       List.filter
         (fun key ->
            match Table.find table key with
            | Some record -> p record.Record.row
            | None -> false)
         candidates
     | None ->
       Table.fold table ~init:[] ~f:(fun acc key record ->
           if p record.Record.row then key :: acc else acc))

let exec_create s ~name ~columns ~primary_key =
  if Catalog.mem (Db.catalog s.sdb) name then errf "table %S exists" name
  else begin
    match
      Schema.make ~key:primary_key
        (List.map
           (fun { Ast.cd_name; cd_type; cd_not_null } ->
              Schema.column ~nullable:(not cd_not_null) cd_name cd_type)
           columns)
    with
    | schema ->
      ignore (Db.create_table s.sdb ~name schema);
      Ok (Message (Printf.sprintf "table %s created" name))
    | exception Invalid_argument m -> Error m
  end

let exec_insert s ~table ~rows =
  let mgr = Db.manager s.sdb in
  let* _ = find_table s table in
  let* n =
    with_txn s (fun txn ->
        List.fold_left
          (fun acc vs ->
             let* n = acc in
             match Manager.insert mgr ~txn ~table (Row.make vs) with
             | Ok () -> Ok (n + 1)
             | Error e -> mgr_err e)
          (Ok 0) rows)
  in
  Ok (Message (Printf.sprintf "%d row(s) inserted" n))

let exec_update s ~table ~assignments ~where =
  let mgr = Db.manager s.sdb in
  let* tbl = find_table s table in
  let schema = Table.schema tbl in
  let* changes =
    List.fold_left
      (fun acc (col, v) ->
         let* cs = acc in
         match Schema.position_opt schema col with
         | Some i -> Ok ((i, v) :: cs)
         | None -> errf "no column %S in %S" col table)
      (Ok []) assignments
  in
  (match matching_keys tbl where with
   | exception Not_found -> errf "WHERE references an unknown column"
   | keys ->
     let* n =
       with_txn s (fun txn ->
           List.fold_left
             (fun acc key ->
                let* n = acc in
                match Manager.update mgr ~txn ~table ~key changes with
                | Ok () -> Ok (n + 1)
                | Error `Not_found -> Ok n  (* raced with a delete *)
                | Error e -> mgr_err e)
             (Ok 0) keys)
     in
     Ok (Message (Printf.sprintf "%d row(s) updated" n)))

let exec_delete s ~table ~where =
  let mgr = Db.manager s.sdb in
  let* tbl = find_table s table in
  (match matching_keys tbl where with
   | exception Not_found -> errf "WHERE references an unknown column"
   | keys ->
     let* n =
       with_txn s (fun txn ->
           List.fold_left
             (fun acc key ->
                let* n = acc in
                match Manager.delete mgr ~txn ~table ~key with
                | Ok () -> Ok (n + 1)
                | Error `Not_found -> Ok n
                | Error e -> mgr_err e)
             (Ok 0) keys)
     in
     Ok (Message (Printf.sprintf "%d row(s) deleted" n)))

let exec_select s ~projection ~table ~where =
  let* tbl = find_table s table in
  let schema = Table.schema tbl in
  let* positions, header =
    match projection with
    | None ->
      Ok
        ( List.init (Schema.arity schema) Fun.id,
          List.map (fun c -> c.Schema.col_name) (Schema.columns schema) )
    | Some cols ->
      List.fold_left
        (fun acc col ->
           let* ps, hs = acc in
           match Schema.position_opt schema col with
           | Some i -> Ok (i :: ps, col :: hs)
           | None -> errf "no column %S in %S" col table)
        (Ok ([], []))
        cols
      |> Result.map (fun (ps, hs) -> (List.rev ps, List.rev hs))
  in
  (match Pred.compile schema where with
   | exception Not_found -> errf "WHERE references an unknown column"
   | p ->
     let rows =
       match key_probe schema where with
       | Some key ->
         (match Table.find tbl key with
          | Some record when p record.Record.row ->
            [ Row.project record.Record.row positions ]
          | Some _ | None -> [])
       | None ->
         (match range_probe tbl where with
          | Some candidates ->
            List.filter_map
              (fun key ->
                 match Table.find tbl key with
                 | Some record when p record.Record.row ->
                   Some (Row.project record.Record.row positions)
                 | Some _ | None -> None)
              candidates
          | None ->
            Table.fold tbl ~init:[] ~f:(fun acc _ record ->
                if p record.Record.row then
                  Row.project record.Record.row positions :: acc
                else acc)
            |> List.sort Row.compare)
     in
     Ok (Rows { header; rows }))

(* {1 Transformations} *)

let is_live h =
  match (Sc.status h).Sc.sc_phase with
  | Transform.Done | Transform.Failed _ -> false
  | _ -> true

let live_tfs s = List.filter is_live s.tfs

(* Several transformations may run concurrently as long as their table
   footprints are disjoint — two schema changes fighting over a table
   would race on routing and lock transfer. *)
let guard_overlap s ~tables =
  let clash h =
    let tf = Sc.transform h in
    let mine = Transform.sources tf @ Transform.targets tf in
    List.exists (fun t -> List.mem t mine) tables
  in
  match List.find_opt clash (live_tfs s) with
  | Some h ->
    errf "tables overlap with running transformation %s; RUN or ABORT it first"
      (Sc.status h).Sc.sc_job
  | None -> Ok ()

let start_tf s ~tables spec =
  let* () = guard_overlap s ~tables in
  match Sc.start s.sdb spec with
  | Ok h ->
    s.tfs <- s.tfs @ [ h ];
    Ok
      (Message
         ((Sc.status h).Sc.sc_job
          ^ " started; TRANSFORM STEP/RUN/STATUS/ABORT"))
  | Error e -> Error (Nbsc_error.to_string e)

let tf_status h =
  let i = Sc.status h in
  Format.asprintf "%s: %a (new transactions -> %s)" i.Sc.sc_job
    Transform.pp_progress i.Sc.sc_progress
    (match i.Sc.sc_routing with
     | `Sources -> "old schema"
     | `Targets -> "new schema")

let all_statuses s =
  String.concat "\n" (List.map tf_status s.tfs)

let exec_tf_control s = function
  | `Status ->
    (match s.tfs with
     | [] -> Ok (Message "no transformation")
     | _ -> Ok (Message (all_statuses s)))
  | `Step n ->
    (match live_tfs s with
     | [] -> errf "no transformation to step"
     | _ ->
       (* n fair rounds: every live transformation advances one quantum
          per round, via the shared job registry. *)
       let failure = ref None in
       for _ = 1 to n do
         if !failure = None then
           List.iter
             (function
               | name, `Failed m when !failure = None ->
                 failure := Some (name ^ ": " ^ m)
               | _ -> ())
             (Db.step_jobs s.sdb)
       done;
       (match !failure with
        | Some m -> errf "transformation failed: %s" m
        | None -> Ok (Message (all_statuses s))))
  | `Run ->
    (match live_tfs s with
     | [] -> errf "no transformation to run"
     | _ ->
       (match Db.run_jobs s.sdb with
        | Ok () -> Ok (Message ("done; " ^ all_statuses s))
        | Error m -> errf "transformation failed: %s" m))
  | `Abort ->
    (match live_tfs s with
     | [] -> errf "no transformation to abort"
     | live ->
       List.iter Sc.cancel live;
       s.tfs <- List.filter (fun tf -> not (List.memq tf live)) s.tfs;
       Ok
         (Message
            (Printf.sprintf
               "%d transformation(s) aborted; transformed tables dropped"
               (List.length live))))

let exec s (stmt : Ast.statement) =
  let mgr = Db.manager s.sdb in
  match stmt with
  | Ast.Create_table { name; columns; primary_key } ->
    exec_create s ~name ~columns ~primary_key
  | Ast.Create_index { index; on_table; columns } ->
    (match Catalog.find_opt (Db.catalog s.sdb) on_table with
     | None -> errf "no such table %S" on_table
     | Some tbl ->
       (match Table.add_ordered_index tbl ~name:index ~columns with
        | () -> Ok (Message (Printf.sprintf "index %s created" index))
        | exception Not_found -> errf "unknown column in index %S" index))
  | Ast.Drop_table name ->
    (match Catalog.find_opt (Db.catalog s.sdb) name with
     | None -> errf "no such table %S" name
     | Some _ ->
       Catalog.drop (Db.catalog s.sdb) name;
       Ok (Message (Printf.sprintf "table %s dropped" name)))
  | Ast.Insert { table; rows } -> exec_insert s ~table ~rows
  | Ast.Update { table; assignments; where } ->
    exec_update s ~table ~assignments ~where
  | Ast.Delete { table; where } -> exec_delete s ~table ~where
  | Ast.Select { projection; table; where } ->
    exec_select s ~projection ~table ~where
  | Ast.Begin_txn ->
    (match s.txn with
     | Some _ -> errf "transaction already open"
     | None ->
       s.txn <- Some (Manager.begin_txn mgr);
       Ok (Message "transaction started"))
  | Ast.Commit_txn ->
    (match s.txn with
     | None -> errf "no open transaction"
     | Some txn ->
       s.txn <- None;
       (match Manager.commit mgr txn with
        | Ok () -> Ok (Message "committed")
        | Error e ->
          ignore (Manager.abort mgr txn);
          mgr_err e))
  | Ast.Rollback_txn ->
    (match s.txn with
     | None -> errf "no open transaction"
     | Some txn ->
       s.txn <- None;
       ignore (Manager.abort mgr txn);
       Ok (Message "rolled back"))
  | Ast.Show_tables ->
    let rows =
      Catalog.tables (Db.catalog s.sdb)
      |> List.map (fun t ->
          Row.make
            [ Value.Text (Table.name t);
              Value.Int (Table.cardinality t) ])
      |> List.sort Row.compare
    in
    Ok (Rows { header = [ "table"; "rows" ]; rows })
  | Ast.Transform_join
      { r; s = s_tbl; target; join_r; join_s; carry_r; carry_s; many_to_many }
    ->
    start_tf s ~tables:[ r; s_tbl; target ]
      (Spec.Foj
          { Spec.r_table = r;
            s_table = s_tbl;
            t_table = target;
            join_r = [ join_r ];
            join_s = [ join_s ];
            t_join = [ join_r ];
            r_carry = carry_r;
            s_carry = carry_s;
            many_to_many })
  | Ast.Transform_split
      { source; r_target; r_cols; s_target; s_cols; split_on; checked } ->
    start_tf s ~tables:[ source; r_target; s_target ]
      (Spec.Split
          { Spec.t_table' = source;
            r_table' = r_target;
            s_table' = s_target;
            r_cols;
            s_cols;
            split_key = split_on;
            assume_consistent = not checked })
  | Ast.Transform_archive { source; match_target; rest_target; where } ->
    start_tf s ~tables:[ source; match_target; rest_target ]
      (Spec.Hsplit
          { Spec.h_source = source;
            h_true_table = match_target;
            h_false_table = rest_target;
            h_pred = where })
  | Ast.Transform_merge { sources; target } ->
    start_tf s ~tables:(target :: sources)
      (Spec.Merge { Spec.m_sources = sources; m_target = target })
  | Ast.Transform_status -> exec_tf_control s `Status
  | Ast.Transform_step n -> exec_tf_control s (`Step n)
  | Ast.Transform_run -> exec_tf_control s `Run
  | Ast.Transform_abort -> exec_tf_control s `Abort

let exec_string s input =
  let* stmts = Parser.parse_many input in
  List.fold_left
    (fun acc stmt ->
       let* outs = acc in
       let* out = exec s stmt in
       Ok (out :: outs))
    (Ok []) stmts
  |> Result.map List.rev

let render = function
  | Message m -> m
  | Rows { header; rows } ->
    let cells =
      List.map (fun row -> List.map Value.to_string (Array.to_list row)) rows
    in
    let widths =
      List.mapi
        (fun i h ->
           List.fold_left
             (fun w cs -> max w (String.length (List.nth cs i)))
             (String.length h) cells)
        header
    in
    let pad s w = s ^ String.make (w - String.length s) ' ' in
    let line cs = String.concat " | " (List.map2 pad cs widths) in
    let buf = Buffer.create 256 in
    Buffer.add_string buf (line header);
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (String.concat "-+-" (List.map (fun w -> String.make w '-') widths));
    List.iter
      (fun cs ->
         Buffer.add_char buf '\n';
         Buffer.add_string buf (line cs))
      cells;
    Buffer.add_string buf
      (Printf.sprintf "\n(%d row%s)" (List.length rows)
         (if List.length rows = 1 then "" else "s"));
    Buffer.contents buf
