(** The trigger-based comparator (Ronström's method, paper Sec. 2.1).

    Triggers inside user transactions keep the transformed tables up to
    date while a reorganizer scans the old tables. The paper's critique
    is that the triggered maintenance work is paid {e synchronously by
    user transactions} — the overhead materialized-view research calls
    significant — whereas the log-based method defers it to a
    background process.

    This implementation installs a post-operation hook that applies the
    same propagation rules the framework uses, but immediately and
    inside the user operation. The simulator charges the triggered rule
    applications to the user operation's cost, which is exactly the
    comparison the ablation bench makes. *)

open Nbsc_core

type t

val install_foj : Db.t -> Spec.foj -> t
(** Creates T, populates it from a (latched, instantaneous) scan, and
    installs the maintenance trigger. *)

val install_split : Db.t -> Spec.split -> t

val uninstall : t -> unit
(** Remove this installation's hook — and only this one: hooks live in
    an id-keyed registry, so two concurrently installed trigger methods
    (or a trigger method next to a shadow-table audit log) do not
    clobber each other. The transformed tables stay. *)

val triggered_ops : t -> int
(** Rule applications performed inside user transactions so far. *)

val last_op_work : t -> int
(** Rule applications performed by the most recent user operation —
    what the simulator adds to that operation's cost. *)
