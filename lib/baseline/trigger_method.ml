open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
open Nbsc_core

type engine = E_foj of Foj.t | E_split of Split.t

type t = {
  mgr : Manager.t;
  id : int;  (* post-op hook registry id — removal must be ours only *)
  engine : engine;
  mutable triggered : int;
  mutable last : int;
}

let applied = function
  | E_foj fj -> (Foj.stats fj).Foj.applied + (Foj.stats fj).Foj.ignored
  | E_split sp -> (Split.stats sp).Split.applied + (Split.stats sp).Split.ignored

let install t =
  Manager.add_post_op_hook t.mgr ~id:t.id (fun ~txn:_ ~lsn op ->
      let before = applied t.engine in
      (match t.engine with
       | E_foj fj -> ignore (Foj.apply fj ~lsn op)
       | E_split sp -> ignore (Split.apply sp ~lsn op));
      t.last <- applied t.engine - before;
      t.triggered <- t.triggered + t.last)

(* Populate the target in bounded chunks, consulting the standard
   quantum fault-injection site between chunks — Ronström's scan is
   conceptually latched, but its copy loop crashes at the same points
   the framework's population does, so the crash matrix can arm it. *)
let populate pop =
  let rec go () =
    let finished = Population.step pop ~limit:256 in
    Fault.hit "quantum_end";
    if not finished then go ()
  in
  go ()

let install_foj db spec =
  let catalog = Db.catalog db in
  let layout = Spec.foj_layout catalog spec in
  ignore
    (Catalog.create_table catalog
       ~indexes:(Spec.foj_t_indexes layout)
       ~name:spec.Spec.t_table (Spec.foj_t_schema layout));
  let fj = Foj.create catalog layout in
  let r_tbl = Catalog.find catalog spec.Spec.r_table in
  let s_tbl = Catalog.find catalog spec.Spec.s_table in
  populate (Population.foj fj ~r_tbl ~s_tbl);
  let t =
    { mgr = Db.manager db;
      id = Db.fresh_holder db;
      engine = E_foj fj;
      triggered = 0;
      last = 0 }
  in
  install t;
  t

let install_split db spec =
  let catalog = Db.catalog db in
  let layout = Spec.split_layout catalog spec in
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.r_table'
       (Spec.split_r_schema layout));
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.s_table'
       (Spec.split_s_schema layout));
  let t_tbl = Catalog.find catalog spec.Spec.t_table' in
  Table.add_index t_tbl ~name:Spec.ix_t_split ~columns:spec.Spec.split_key;
  let sp = Split.create catalog layout in
  populate (Population.split sp ~t_tbl);
  let t =
    { mgr = Db.manager db;
      id = Db.fresh_holder db;
      engine = E_split sp;
      triggered = 0;
      last = 0 }
  in
  install t;
  t

let uninstall t = Manager.remove_post_op_hook t.mgr ~id:t.id
let triggered_ops t = t.triggered
let last_op_work t = t.last
