open Nbsc_lock
open Nbsc_storage
open Nbsc_txn
open Nbsc_core

type state = Not_started | Running | Finished

type t = {
  db : Db.t;
  mgr : Manager.t;
  sources : string list;
  holder : int;
  pop : Population.t;
  mutable state : state;
  mutable rows : int;
}

let next_holder =
  let counter = ref 2_000_000_000 in
  fun () ->
    incr counter;
    !counter

let foj db spec =
  let catalog = Db.catalog db in
  let layout = Spec.foj_layout catalog spec in
  ignore
    (Catalog.create_table catalog
       ~indexes:(Spec.foj_t_indexes layout)
       ~name:spec.Spec.t_table (Spec.foj_t_schema layout));
  let fj = Foj.create catalog layout in
  let r_tbl = Catalog.find catalog spec.Spec.r_table in
  let s_tbl = Catalog.find catalog spec.Spec.s_table in
  { db;
    mgr = Db.manager db;
    sources = [ spec.Spec.r_table; spec.Spec.s_table ];
    holder = next_holder ();
    pop = Population.foj fj ~r_tbl ~s_tbl;
    state = Not_started;
    rows = 0 }

let split db spec =
  let catalog = Db.catalog db in
  let layout = Spec.split_layout catalog spec in
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.r_table'
       (Spec.split_r_schema layout));
  ignore
    (Catalog.create_table catalog ~name:spec.Spec.s_table'
       (Spec.split_s_schema layout));
  let t_tbl = Catalog.find catalog spec.Spec.t_table' in
  Table.add_index t_tbl ~name:Spec.ix_t_split ~columns:spec.Spec.split_key;
  let sp = Split.create catalog layout in
  { db;
    mgr = Db.manager db;
    sources = [ spec.Spec.t_table' ];
    holder = next_holder ();
    pop = Population.split sp ~t_tbl;
    state = Not_started;
    rows = 0 }

let step t ~limit =
  match t.state with
  | Finished -> `Done
  | Not_started | Running ->
    if t.state = Not_started then begin
      (* The whole point of the paper: this latch stays until the end. *)
      List.iter
        (fun table ->
           if
             not
               (Latch.try_latch (Manager.latches t.mgr) ~holder:t.holder ~table)
           then failwith ("Insert_into_select: cannot latch " ^ table))
        t.sources;
      t.state <- Running
    end;
    let before = Population.scanned t.pop in
    let finished = Population.step t.pop ~limit in
    t.rows <- t.rows + (Population.scanned t.pop - before);
    if finished then begin
      List.iter
        (fun table ->
           Latch.unlatch (Manager.latches t.mgr) ~holder:t.holder ~table)
        t.sources;
      List.iter
        (fun table ->
           if Catalog.mem (Db.catalog t.db) table then
             Catalog.drop (Db.catalog t.db) table)
        t.sources;
      t.state <- Finished;
      `Done
    end
    else `Running

let rows_processed t = t.rows
let finished t = t.state = Finished
