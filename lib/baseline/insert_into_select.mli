(** The blocking comparator: [INSERT INTO ... SELECT].

    What every DBMS of the paper's era could do (Sec. 1): lock the
    involved tables, evaluate the transformation query, insert the
    result, switch. Correct and simple — and the tables are unavailable
    for the whole duration, which for large tables "could easily take
    tens of minutes". The benches run this against the same workloads
    as the non-blocking framework to regenerate the paper's motivating
    comparison.

    Implemented as an incremental background job like {!Transform} so
    the simulator can drive it — but it holds table latches from the
    first step to the last, so user transactions on the sources stall
    for the entire transformation. *)

open Nbsc_core

type t

val foj : Db.t -> Spec.foj -> t
(** Creates T (same derived schema and indexes as the framework). *)

val split : Db.t -> Spec.split -> t

val step : t -> limit:int -> [ `Running | `Done ]
(** Process up to [limit] source rows. The first call latches the
    source tables; the call that finishes unlatches (and drops the
    sources). *)

val rows_processed : t -> int
val finished : t -> bool
