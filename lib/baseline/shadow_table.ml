open Nbsc_wal
open Nbsc_lock
open Nbsc_storage
open Nbsc_txn
open Nbsc_engine
open Nbsc_core

(* The backfill alternates [Unlatched] (user ops run; audit triggers
   capture their writes) and [Latched] (one chunk is scanned under the
   table latch) so every chunk reads a stable image — the latch is
   taken in one step and the chunk scanned in the next, which is what
   makes the latched windows visible to interleaved user transactions
   (and thus to the throughput measurement). *)
type phase =
  | Backfill of [ `Unlatched | `Latched ]
  | Catch_up
  | Done

type t = {
  db : Db.t;
  mgr : Manager.t;
  holder : int;  (* latch holder and post-op hook registry id *)
  job : string;
  sources : string list;
  targets : string list;
  rules : Propagator.rules;
  pop : Population.t;
  chunk : int;
  drop_sources : bool;
  audit : (Lsn.t * Log_record.op) Queue.t;
  mutable phase : phase;
  mutable captured : int;
  mutable replayed : int;
  mutable backfilled : int;
  mutable latched_windows : int;
}

let create db ?(drop_sources = true) ?(chunk = 256) packed =
  let (module T : Transformation.S) = packed in
  let mgr = Db.manager db in
  let holder = Db.fresh_holder db in
  let t =
    { db;
      mgr;
      holder;
      job = Printf.sprintf "shadow-%s#%d" T.name holder;
      sources = T.sources;
      targets = T.targets;
      rules = T.rules;
      pop = T.population;
      chunk = max 1 chunk;
      drop_sources;
      audit = Queue.create ();
      phase = Backfill `Unlatched;
      captured = 0;
      replayed = 0;
      backfilled = 0;
      latched_windows = 0 }
  in
  (* The audit-log trigger: every write a user transaction performs on
     a source table — compensations during rollback included — is
     captured for later replay. This is the shadow-table method's
     analogue of reading the WAL, paid synchronously inside the user
     operation like any trigger. *)
  Manager.add_post_op_hook mgr ~id:holder (fun ~txn:_ ~lsn op ->
      if List.exists (String.equal (Log_record.op_table op)) t.sources then begin
        Queue.add (lsn, op) t.audit;
        t.captured <- t.captured + 1
      end);
  t

let audit_pending t = Queue.length t.audit
let captured t = t.captured
let replayed t = t.replayed
let backfilled t = t.backfilled
let latched_windows t = t.latched_windows
let job_name t = t.job
let finished t = t.phase = Done

let latch_sources t =
  let latches = Manager.latches t.mgr in
  let rec go acc = function
    | [] -> true
    | table :: rest ->
      if Latch.try_latch latches ~holder:t.holder ~table then
        go (table :: acc) rest
      else begin
        (* Back out and retry next quantum: some other reorganizer
           holds a latch we need. *)
        List.iter (fun table -> Latch.unlatch latches ~holder:t.holder ~table)
          acc;
        false
      end
  in
  go [] t.sources

let unlatch_sources t =
  let latches = Manager.latches t.mgr in
  List.iter
    (fun table -> Latch.unlatch latches ~holder:t.holder ~table)
    t.sources

let drain_audit t ~limit =
  let n = ref 0 in
  while !n < limit && not (Queue.is_empty t.audit) do
    let lsn, op = Queue.pop t.audit in
    ignore (t.rules.Propagator.apply ~lsn op);
    t.replayed <- t.replayed + 1;
    incr n
  done

let drop_sources_now t =
  let catalog = Db.catalog t.db in
  List.iter
    (fun table -> if Catalog.mem catalog table then Catalog.drop catalog table)
    t.sources

(* Cut over: with the sources latched and the audit log empty, the
   targets are exactly the transformed image — the switch is the
   (conceptually atomic) rename. Uses the same commit fault site as the
   framework's synchronization so the crash matrix can arm it. *)
let cutover t =
  drain_audit t ~limit:max_int;
  Fault.hit "sync_commit";
  Manager.remove_post_op_hook t.mgr ~id:t.holder;
  unlatch_sources t;
  if t.drop_sources then drop_sources_now t;
  t.phase <- Done

let step t ~limit =
  (match t.phase with
   | Done -> ()
   | Backfill `Unlatched ->
     (* The audit log only accumulates during the backfill — replay
        must wait for the copy to finish (the population's initial
        inserts assume they are the only writer of the targets). The
        growing queue during a long backfill is part of the method's
        honest cost. *)
     if latch_sources t then begin
       t.latched_windows <- t.latched_windows + 1;
       t.phase <- Backfill `Latched
     end;
     Fault.hit "quantum_end"
   | Backfill `Latched ->
     let before = Population.scanned t.pop in
     let finished = Population.step t.pop ~limit:(min limit t.chunk) in
     t.backfilled <- t.backfilled + (Population.scanned t.pop - before);
     unlatch_sources t;
     t.phase <- (if finished then Catch_up else Backfill `Unlatched);
     Fault.hit "quantum_end"
   | Catch_up ->
     if Queue.is_empty t.audit then begin
       if latch_sources t then cutover t
     end
     else drain_audit t ~limit;
     Fault.hit "quantum_end");
  t.phase = Done

(* Tear down a shadow run without cutting over (crash-matrix restarts,
   aborted comparisons): remove the trigger, release any latches, and
   close the backfill scan. The targets keep whatever state they have —
   the caller drops them before rebuilding. *)
let abandon t =
  if t.phase <> Done then begin
    Manager.remove_post_op_hook t.mgr ~id:t.holder;
    (match t.phase with Backfill `Latched -> unlatch_sources t | _ -> ());
    Population.close t.pop;
    Queue.clear t.audit;
    t.phase <- Done
  end

let register t =
  Db.register_job t.db ~name:t.job
    ~step:(fun () -> if step t ~limit:t.chunk then `Done else `Running)
    ()
