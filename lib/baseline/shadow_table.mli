(** The shadow-table comparator: trigger-captured audit log plus a
    latched chunked backfill, cut over atomically at the end.

    This is the classical online-reorganization recipe (Ronström's
    trigger method industrialized by tools like pt-online-schema-change
    and gh-ost): create the target tables, install a trigger that
    captures every concurrent source write into an audit log, copy the
    source in small latched chunks, replay the audit log until it
    drains, then latch once more and switch. Compared head-to-head with
    the paper's log-redo method, its costs are the synchronous trigger
    work inside user transactions and the repeated latched windows the
    backfill needs; compared with {!Insert_into_select}, it never holds
    a latch for more than one chunk.

    Built generically over {!Nbsc_core.Transformation.packed}: the
    packed operator supplies target tables, the population scan (used
    as the backfill, one latched chunk at a time) and the propagation
    rules (used to replay the audit log, LSN-gated so replay converges
    regardless of interleaving). *)

open Nbsc_core

type t

val create : Db.t -> ?drop_sources:bool -> ?chunk:int -> Transformation.packed -> t
(** Install the audit trigger and prepare the backfill.
    [chunk] (default 256) bounds both the rows scanned per latched
    window and the audit entries replayed per step; [drop_sources]
    (default true) drops the source tables at cutover. *)

val step : t -> limit:int -> bool
(** One quantum: a latch acquisition, one latched backfill chunk, or a
    bounded audit replay — then, once the audit log drains, the final
    latch-and-cutover. Returns true when done. Consults the standard
    [quantum_end] / [sync_commit] fault-injection sites. *)

val finished : t -> bool

val register : t -> unit
(** Register as a background job on the db's scheduler ({!job_name}),
    stepping [chunk] units per round. *)

val job_name : t -> string

val abandon : t -> unit
(** Tear down without cutting over: remove the trigger, release
    latches, close the scan. Target tables keep their partial state. *)

(** {1 Counters} *)

val captured : t -> int
(** Source writes the audit trigger captured. *)

val replayed : t -> int
(** Audit entries replayed into the targets. *)

val backfilled : t -> int
(** Source rows copied by the latched backfill. *)

val audit_pending : t -> int
(** Captured writes not yet replayed (the catch-up lag). *)

val latched_windows : t -> int
(** Latched windows taken so far (incl. the final cutover latch). *)
