open Nbsc_wal
open Nbsc_storage

type error = [ `No_table of string | `Duplicate_key | `Not_found ]

let op_to_table table ~lsn (op : Log_record.op) =
  match op with
  | Log_record.Insert { row; _ } ->
    (Table.insert table ~lsn row
     :> (unit, [ `Duplicate_key | `Not_found ]) result)
  | Log_record.Delete { key; _ } ->
    (match Table.delete table ~lsn key with
     | Ok _ -> Ok ()
     | Error `Not_found -> Error `Not_found)
  | Log_record.Update { key; changes; _ } ->
    (match Table.update table ~lsn ~key changes with
     | Ok _ -> Ok ()
     | Error `Not_found -> Error `Not_found)

let op catalog ~lsn (operation : Log_record.op) =
  let table_name = Log_record.op_table operation in
  match Catalog.find_opt catalog table_name with
  | None -> Error (`No_table table_name)
  | Some table -> (op_to_table table ~lsn operation :> (unit, error) result)

let pp_error ppf = function
  | `No_table t -> Format.fprintf ppf "no such table %S" t
  | `Duplicate_key -> Format.pp_print_string ppf "duplicate key"
  | `Not_found -> Format.pp_print_string ppf "record not found"
