open Nbsc_value
open Nbsc_wal
open Nbsc_lock
open Nbsc_storage
module Obs = Nbsc_obs.Obs
module Json = Nbsc_obs.Json

type txn_id = Log_record.txn_id

type status = Active | Committed | Aborted

type error =
  [ `Blocked of txn_id list
  | `Deadlock of txn_id list
  | `Latched of string
  | `Frozen of string
  | `Duplicate_key
  | `Not_found
  | `No_table of string
  | `Txn_not_active
  | `Abort_only
  | `Key_update
  | `Disk_full ]

type isolation = [ `Read_committed | `Snapshot ]

type txn = {
  id : txn_id;
  mutable txn_status : status;
  mutable first_lsn : Lsn.t;
  mutable last_lsn : Lsn.t;
  mutable abort_only : bool;
  snapshot : Lsn.t option;  (* Snapshot isolation: reads as of this LSN *)
}

type pin = int

(* Check the low-water mark only every this many live records: a
   truncation pass walks actives and pins, so doing it per commit
   would put an O(active) scan on the hot path for nothing. *)
let truncate_check_interval = 4 * 1024

type t = {
  log : Log.t;
  locks : Lock_table.t;
  latches : Latch.t;
  catalog : Catalog.t;
  txns : (txn_id, txn) Hashtbl.t;  (* all transactions ever, by id *)
  actives : (txn_id, txn) Hashtbl.t;  (* the Active subset of txns *)
  pins : (pin, unit -> Lsn.t) Hashtbl.t;  (* registered cursor positions *)
  mutable next_pin : pin;
  mutable durable_floor : Lsn.t option;  (* last durable checkpoint LSN *)
  mutable truncate_after : int;  (* re-check low water at this length *)
  mutable group_window : int;  (* commits per durability barrier *)
  mutable pending_syncs : int;  (* commits since the last barrier *)
  mutable disk_full : bool;  (* degraded: a durable append hit ENOSPC *)
  wait_graph : Wait_graph.t;
  victims : (txn_id, unit) Hashtbl.t;  (* sentenced by deadlock handling *)
  mutable fairness : bool;
  mutable next_id : txn_id;
  mutable frozen : (string * txn_id) list;  (* table, cutoff id *)
  mutable extra_lock_hooks :
    (int
    * (txn:txn_id -> table:string -> key:Row.Key.t -> mode:Compat.mode ->
       Lock_table_many.request list))
      list;
  mutable post_op_hooks :
    (int * (txn:txn_id -> lsn:Lsn.t -> Log_record.op -> unit)) list;
  mutable access_hooks :
    (int * (table:string -> key:Row.Key.t -> unit)) list;
  (* Active `Snapshot transactions. Feeds the tables' version-retention
     hint: while zero, system overwrites skip version pushes entirely
     (nobody can ever resolve the superseded state). *)
  mutable snapshot_txns : int;
  obs : Obs.Registry.t;
  n_ops : Obs.Counter.t;
  n_commits : Obs.Counter.t;
  n_aborts : Obs.Counter.t;
  n_blocked : Obs.Counter.t;
  n_deadlocks : Obs.Counter.t;
  n_victims : Obs.Counter.t;
  g_low_water : Obs.Gauge.t;
  n_versions_reclaimed : Obs.Counter.t;
  h_batch : Obs.Histogram.t;  (* engine.commit_batch_size *)
}

let create ?log ?obs catalog =
  let obs = match obs with Some r -> r | None -> Obs.Registry.create () in
  let t =
    { log = (match log with Some l -> l | None -> Log.create ());
      locks = Lock_table.create ();
      latches = Latch.create ();
      catalog;
      txns = Hashtbl.create 256;
      actives = Hashtbl.create 64;
      pins = Hashtbl.create 8;
      next_pin = 1;
      durable_floor = None;
      truncate_after = truncate_check_interval;
      group_window = 1;
      pending_syncs = 0;
      disk_full = false;
      wait_graph = Wait_graph.create ~obs ();
      victims = Hashtbl.create 16;
      fairness = true;
      next_id = 1;
      frozen = [];
      extra_lock_hooks = [];
      post_op_hooks = [];
      access_hooks = [];
      snapshot_txns = 0;
      obs;
      n_ops = Obs.Registry.counter obs "txn.ops";
      n_commits = Obs.Registry.counter obs "txn.commits";
      n_aborts = Obs.Registry.counter obs "txn.aborts";
      n_blocked = Obs.Registry.counter obs "txn.blocked";
      n_deadlocks = Obs.Registry.counter obs "txn.deadlocks";
      n_victims = Obs.Registry.counter obs "txn.victims";
      g_low_water = Obs.Registry.gauge obs "wal.low_water";
      n_versions_reclaimed =
        Obs.Registry.counter obs "storage.versions_reclaimed";
      h_batch =
        Obs.Registry.histogram
          ~edges:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024. ]
          obs "engine.commit_batch_size" }
  in
  (* Active-transaction count and the WAL shape are derived, so they
     are probes, not write-through counters. *)
  Obs.Registry.probe obs "txn.active" (fun () ->
      float_of_int (Hashtbl.length t.actives));
  Obs.Registry.probe obs "wal.records" (fun () ->
      float_of_int (Log.length t.log));
  Obs.Registry.probe obs "wal.segments" (fun () ->
      float_of_int (Log.segments t.log));
  Obs.Registry.probe obs "wal.truncated_total" (fun () ->
      float_of_int (Log.truncated_total t.log));
  (* Version-chain population is derived state, so a probe. *)
  Obs.Registry.probe obs "storage.versions_live" (fun () ->
      float_of_int
        (List.fold_left
           (fun acc table -> acc + Table.versions_count table)
           0 (Catalog.tables t.catalog)));
  (* Allocation pressure per committed transaction: GC words allocated
     since this manager was created, averaged over its commits. A cheap
     engine-wide probe — the bench gates on it staying flat. *)
  let alloc_base =
    let s = Gc.quick_stat () in
    s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words
  in
  Obs.Registry.probe obs "engine.alloc_words_per_txn" (fun () ->
      let commits = Obs.Counter.value t.n_commits in
      if commits = 0 then 0.
      else begin
        let s = Gc.quick_stat () in
        let words = s.Gc.minor_words +. s.Gc.major_words -. s.Gc.promoted_words in
        (words -. alloc_base) /. float_of_int commits
      end);
  (* Wire the version-retention hint into every table this manager
     governs, so system overwrites only pay for version chains while a
     snapshot transaction is actually active. Tables created later are
     wired by [track_table] (the engine facade calls it). *)
  List.iter
    (fun table ->
       Table.set_retain_hint table (fun () -> t.snapshot_txns > 0))
    (Catalog.tables catalog);
  t

let track_table t table =
  Table.set_retain_hint table (fun () -> t.snapshot_txns > 0)

let obs t = t.obs
let log t = t.log
let locks t = t.locks
let latches t = t.latches
let catalog t = t.catalog
let wait_graph t = t.wait_graph

let set_contention ?policy ?fairness t =
  (match policy with
   | Some p -> Wait_graph.set_policy t.wait_graph p
   | None -> ());
  match fairness with Some f -> t.fairness <- f | None -> ()

let is_victim t id = Hashtbl.mem t.victims id

let bump_txn_ids t ~above =
  if above >= t.next_id then t.next_id <- above + 1

let begin_txn ?(isolation = `Read_committed) t =
  let id = t.next_id in
  t.next_id <- id + 1;
  let lsn = Log.append t.log ~txn:id ~prev_lsn:Lsn.zero Log_record.Begin in
  (* A snapshot transaction reads as of its Begin record: every commit
     that preceded it has a Commit LSN strictly below [lsn]. *)
  let snapshot =
    match isolation with `Snapshot -> Some lsn | `Read_committed -> None
  in
  let txn =
    { id; txn_status = Active; first_lsn = lsn; last_lsn = lsn;
      abort_only = false; snapshot }
  in
  if snapshot <> None then t.snapshot_txns <- t.snapshot_txns + 1;
  Hashtbl.replace t.txns id txn;
  Hashtbl.replace t.actives id txn;
  id

let find_txn t id =
  match Hashtbl.find_opt t.txns id with
  | Some txn -> Some txn
  | None -> None

let status t id =
  match find_txn t id with
  | Some txn -> txn.txn_status
  | None -> Aborted  (* unknown ids are treated as long gone *)

let is_active t id =
  match find_txn t id with
  | Some txn -> txn.txn_status = Active
  | None -> false

let active_snapshot t =
  Hashtbl.fold
    (fun id txn acc -> (id, txn.first_lsn) :: acc)
    t.actives []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let active_count t = Hashtbl.length t.actives

(* {2 MVCC visibility}

   Version stamps resolve through the (never-pruned) [txns] table:
   stamp 0 is the committed-system sentinel ("committed at its own
   LSN" - bulk loads, snapshot restores, system/CLR writes); any other
   stamp is a transaction whose Commit record - its [last_lsn] - is
   the version's commit point. *)

let classify_version t ~txn ~lsn =
  if txn = 0 then `At lsn
  else
    match Hashtbl.find_opt t.txns txn with
    | Some tx ->
      (match tx.txn_status with
       | Committed -> `At tx.last_lsn
       | Active -> `Live
       | Aborted -> `Dead)
    | None -> `Dead  (* unknown stamps cannot be resurrected: dead *)

let oldest_snapshot t =
  Hashtbl.fold
    (fun _ txn acc ->
       match (txn.snapshot, acc) with
       | None, acc -> acc
       | (Some _ as s), None -> s
       | Some s, Some a -> Some (if Lsn.(s < a) then s else a))
    t.actives None

(* Resolve the row image of [key] as of LSN [at], for reader [self]:
   the newest state that is the reader's own write or committed at or
   below [at]. The heap record is the newest state; older ones hang
   off the version chain, newest first. A tombstone ([v_row = None])
   resolves to "no row". Lock-free by construction. *)
let resolve_visible t ~self ~at table key =
  let visible ~txn ~lsn =
    txn = self
    || (match classify_version t ~txn ~lsn with
        | `At c -> Lsn.(c <= at)
        | `Live | `Dead -> false)
  in
  let rec walk = function
    | [] -> None
    | v :: rest ->
      if visible ~txn:v.Table.v_txn ~lsn:v.Table.v_lsn then v.Table.v_row
      else walk rest
  in
  match Table.find table key with
  | Some r when visible ~txn:r.Record.txn ~lsn:r.Record.lsn ->
    Some r.Record.row
  | Some _ | None -> walk (Table.versions table key)

(* {2 WAL retention}

   Who may still need an old log record: an active transaction's undo
   chain (rollback walks back to its first LSN), a registered cursor (a
   propagator catching a new table up — registered via [pin_wal] so the
   low-water computation sees it), and crash recovery (everything above
   the last durable checkpoint). Everything below the minimum of those
   is reclaimable; [truncate_wal] executes the cut and the commit/abort
   path re-checks it every [truncate_check_interval] live records. *)

let pin_wal t position =
  let id = t.next_pin in
  t.next_pin <- id + 1;
  Hashtbl.replace t.pins id position;
  id

let unpin_wal t pin = Hashtbl.remove t.pins pin

let set_durable_floor t lsn = t.durable_floor <- Some lsn

let wal_low_water t =
  let low = ref (Lsn.next (Log.head t.log)) in
  let note l = if Lsn.(l < !low) then low := l in
  Hashtbl.iter (fun _ txn -> note txn.first_lsn) t.actives;
  Hashtbl.iter (fun _ position -> note (position ())) t.pins;
  (match t.durable_floor with
   | Some durable -> note (Lsn.next durable)
   | None -> ());
  !low

(* Version-chain GC horizon: nothing at or below it is needed by any
   active snapshot, and the WAL below the low-water mark can no longer
   replay into it. Pinning to [wal_low_water] keeps chains recoverable
   exactly as long as the log records that produced them. *)
let gc_versions t =
  let low = wal_low_water t in
  let oldest = oldest_snapshot t in
  let horizon =
    match oldest with
    | Some s -> if Lsn.(s < low) then s else low
    | None -> low
  in
  (* Invariant: never reclaim state an active snapshot still resolves. *)
  (match oldest with
   | Some s -> assert (Lsn.(horizon <= s))
   | None -> ());
  let classify ~txn ~lsn = classify_version t ~txn ~lsn in
  let reclaimed =
    List.fold_left
      (fun acc table -> acc + Table.gc_versions table ~horizon ~classify)
      0 (Catalog.tables t.catalog)
  in
  if reclaimed > 0 then Obs.Counter.add t.n_versions_reclaimed reclaimed;
  reclaimed

let truncate_wal t =
  let low = wal_low_water t in
  Log.truncate_to t.log low;
  Obs.Gauge.set t.g_low_water (float_of_int (Lsn.to_int low));
  t.truncate_after <- Log.length t.log + truncate_check_interval;
  ignore (gc_versions t);
  low

let maybe_truncate t =
  if Log.length t.log >= t.truncate_after then ignore (truncate_wal t)

(* {2 Group commit}

   Commits inside a batch window share one durability barrier: the
   persist sink buffers encoded records and [Log.sync] flushes them,
   so a window of w commits costs one write+flush instead of w (one
   per record before the buffered sink). The low-water/truncation
   re-check rides the same barrier — it is the natural "end of a unit
   of durable work" point. With the default window of 1 every commit
   is durable at its ack, exactly the pre-group-commit contract. *)

let flush_commits t =
  if t.pending_syncs > 0 then begin
    Log.sync t.log;
    Obs.Histogram.observe t.h_batch (float_of_int t.pending_syncs);
    t.pending_syncs <- 0;
    maybe_truncate t
  end

(* {2 Degraded mode: disk full}

   The persist sink flags the manager when a durable append hits
   [ENOSPC]: acknowledging new writes against a disk that cannot hold
   their log records would turn the ack into a lie. While degraded,
   write operations and commits are refused with [`Disk_full]; reads
   and in-flight aborts proceed (rollback only needs the in-memory
   log — its CLRs join the buffered suffix and flush once space
   returns). The sink clears the flag on the next successful physical
   append, so recovery from a transient full disk is automatic. *)

let set_disk_full t = t.disk_full <- true

let clear_disk_full t = t.disk_full <- false

let disk_full t = t.disk_full

let set_group_commit t window =
  if window <= 0 then invalid_arg "Manager.set_group_commit: window";
  t.group_window <- window;
  (* Shrinking the window below what is already pending must not leave
     acked commits waiting for a barrier that never comes. *)
  if t.pending_syncs >= t.group_window then flush_commits t

let group_commit_window t = t.group_window

(* [commit] increments [pending_syncs] before [n_commits], so outside
   of [commit] the difference is exactly the commits the last barrier
   covered. Commits flush in commit order — one buffered sink, one
   log — which makes the count a durability floor, not just a size. *)
let synced_commits t = Obs.Counter.value t.n_commits - t.pending_syncs

let mark_abort_only t id =
  match find_txn t id with
  | Some txn when txn.txn_status = Active -> txn.abort_only <- true
  | Some _ | None -> ()

let is_abort_only t id =
  match find_txn t id with Some txn -> txn.abort_only | None -> false

let add_extra_lock_hook t ~id hook =
  t.extra_lock_hooks <-
    (id, hook) :: List.remove_assoc id t.extra_lock_hooks

let remove_extra_lock_hook t ~id =
  t.extra_lock_hooks <- List.remove_assoc id t.extra_lock_hooks

(* Post-op hooks are an id-keyed registry like [access_hooks]: several
   consumers (two trigger-method baselines, a shadow-table audit log)
   coexist, and each uninstalls only its own id. A single mutable slot
   here once let a second install silently clobber the first. *)
let add_post_op_hook t ~id hook =
  t.post_op_hooks <- (id, hook) :: List.remove_assoc id t.post_op_hooks

let remove_post_op_hook t ~id =
  t.post_op_hooks <- List.remove_assoc id t.post_op_hooks

(* Legacy single-slot interface, kept as a reserved id in the registry
   so existing callers keep their install/replace/remove semantics. *)
let legacy_post_op_id = 0

let set_post_op_hook t hook =
  match hook with
  | Some hook -> add_post_op_hook t ~id:legacy_post_op_id hook
  | None -> remove_post_op_hook t ~id:legacy_post_op_id

(* Access hooks observe every successful keyed operation (reads
   included) - the lazy-migration machinery uses them to migrate a
   record on first touch under the new schema. *)
let add_access_hook t ~id hook =
  t.access_hooks <- (id, hook) :: List.remove_assoc id t.access_hooks

let remove_access_hook t ~id =
  t.access_hooks <- List.remove_assoc id t.access_hooks

let fire_access t ~table ~key =
  match t.access_hooks with
  | [] -> ()
  | hooks -> List.iter (fun (_, hook) -> hook ~table ~key) hooks

let fire_post_op t ~txn ~lsn op =
  match t.post_op_hooks with
  | [] -> ()
  | hooks -> List.iter (fun (_, hook) -> hook ~txn ~lsn op) hooks

(* Freezes are additive so concurrent transformations can each freeze
   their own source tables; [unfreeze_tables] lifts only the named
   ones. A table frozen twice keeps its earliest cutoff. *)
let freeze_tables t tables =
  let cutoff = t.next_id - 1 in
  t.frozen <-
    List.fold_left
      (fun frozen table ->
         if List.mem_assoc table frozen then frozen
         else (table, cutoff) :: frozen)
      t.frozen tables

let unfreeze_tables t tables =
  t.frozen <-
    List.filter (fun (table, _) -> not (List.mem table tables)) t.frozen

(* Pre-flight checks shared by all operations. [key], when known,
   narrows the latch check to the key's hash shard: a shard latch on
   another partition of the table does not block the operation (a
   whole-table latch always does). *)
let check_access t ?key txn_id ~table =
  match find_txn t txn_id with
  | None -> Error `Txn_not_active
  | Some txn ->
    if txn.txn_status <> Active then Error `Txn_not_active
    else if txn.abort_only then Error `Abort_only
    else begin
      let key_hash = Option.map Row.Key.hash key in
      match Latch.blocking_holder t.latches ~table ~key_hash with
      | Some holder when holder <> txn_id -> Error (`Latched table)
      | Some _ | None ->
        (match List.assoc_opt table t.frozen with
         | Some cutoff when txn_id > cutoff -> Error (`Frozen table)
         | Some _ | None -> Ok txn)
    end

let finish t txn final_status =
  txn.txn_status <- final_status;
  if txn.snapshot <> None then t.snapshot_txns <- t.snapshot_txns - 1;
  Hashtbl.remove t.actives txn.id;
  Wait_graph.remove_txn t.wait_graph ~owner:txn.id;
  Lock_table.release_owner t.locks ~owner:txn.id

(* Rollback: walk the undo chain from last_lsn, applying inverses and
   emitting CLRs. CLRs themselves are never undone; they skip to their
   undo_next (ARIES). *)
let rollback t txn =
  let append body =
    let lsn = Log.append t.log ~txn:txn.id ~prev_lsn:txn.last_lsn body in
    txn.last_lsn <- lsn;
    lsn
  in
  ignore (append Log_record.Abort_begin);
  let rec undo lsn =
    if Lsn.(lsn > Lsn.zero) then begin
      let record = Log.get t.log lsn in
      match record.Log_record.body with
      | Log_record.Op op ->
        let table_name = Log_record.op_table op in
        (match Catalog.find_opt t.catalog table_name with
         | None ->
           (* Table dropped mid-transaction: nothing to undo there. *)
           undo record.Log_record.prev_lsn
         | Some table ->
           let key = Log_record.op_key (Table.schema table) op in
           let inverse = Log_record.invert ~key op in
           let clr_lsn =
             append
               (Log_record.Clr
                  { undo_next = record.Log_record.prev_lsn; op = inverse })
           in
           (match Apply.op_to_table table ~lsn:clr_lsn inverse with
            | Ok () -> ()
            | Error (`Duplicate_key | `Not_found) ->
              (* Strict 2PL means our updates cannot have been clobbered;
                 failure here is a bug. *)
              assert false);
           (* Compensations are writes too: trigger-style maintenance
              (post-op consumers) must see the inverse or an aborted
              transaction leaves their derived state stale. *)
           fire_post_op t ~txn:txn.id ~lsn:clr_lsn inverse;
           undo record.Log_record.prev_lsn)
      | Log_record.Clr { undo_next; _ } -> undo undo_next
      | Log_record.Begin -> ()
      | Log_record.Commit | Log_record.Abort_begin | Log_record.Abort_done
      | Log_record.Fuzzy_mark _ | Log_record.Cc_begin _ | Log_record.Cc_ok _
      | Log_record.Checkpoint _ | Log_record.Job_state _
      | Log_record.Job_done _ | Log_record.Watermark _ ->
        undo record.Log_record.prev_lsn
    end
  in
  (* Start below the Abort_begin we just wrote. *)
  let start =
    let r = Log.get t.log txn.last_lsn in
    r.Log_record.prev_lsn
  in
  undo start;
  ignore (append Log_record.Abort_done)

let abort t txn_id =
  match find_txn t txn_id with
  | None -> Error `Txn_not_active
  | Some txn ->
    if txn.txn_status <> Active then Error `Txn_not_active
    else begin
      rollback t txn;
      finish t txn Aborted;
      maybe_truncate t;
      Obs.Counter.incr t.n_aborts;
      if Obs.Registry.tracing t.obs then
        Obs.point t.obs "txn.abort" [ ("txn", Json.Int txn_id) ];
      Ok ()
    end

let rec take_lock t txn_id ~table ~key mode =
  let base =
    { Lock_table_many.table; key;
      lock = { Compat.mode; provenance = Compat.Native } }
  in
  let extras =
    match t.extra_lock_hooks with
    | [] -> []
    | hooks ->
      List.concat_map
        (fun (_, hook) -> hook ~txn:txn_id ~table ~key ~mode)
        hooks
  in
  let requests = base :: extras in
  (* Anti-barging: queued waiters whose pending request conflicts with
     ours go first (FIFO per resource). Re-acquisition of a resource we
     already hold a lock on is exempt — an upgrade must not queue
     behind its own grant. *)
  let fairness_blockers =
    if not t.fairness then []
    else
      Wait_graph.queued_ahead t.wait_graph ~owner:txn_id
        ~live:(fun o -> is_active t o)
        ~holds:(fun (r : Lock_table_many.request) ->
            Lock_table.holds_any t.locks ~owner:txn_id ~table:r.table
              ~key:r.key)
        requests
  in
  let outcome =
    if fairness_blockers <> [] then Lock_table.Blocked fairness_blockers
    else Lock_table_many.acquire_all t.locks ~owner:txn_id requests
  in
  match outcome with
  | Lock_table.Granted ->
    Wait_graph.on_granted t.wait_graph ~owner:txn_id;
    Ok ()
  | Lock_table.Blocked owners ->
    Obs.Counter.incr t.n_blocked;
    if Obs.Registry.tracing t.obs then
      Obs.point t.obs "lock.wait"
        [ ("txn", Json.Int txn_id);
          ("table", Json.String table);
          ("blockers", Json.List (List.map (fun o -> Json.Int o) owners)) ];
    (match
       Wait_graph.block t.wait_graph ~waiter:txn_id ~requests ~blockers:owners
     with
     | Wait_graph.Wait -> Error (`Blocked owners)
     | Wait_graph.Die cycle ->
       Obs.Counter.incr t.n_deadlocks;
       Hashtbl.replace t.victims txn_id ();
       mark_abort_only t txn_id;
       if Obs.Registry.tracing t.obs then
         Obs.point t.obs "txn.deadlock"
           [ ("txn", Json.Int txn_id);
             ("cycle", Json.List (List.map (fun o -> Json.Int o) cycle)) ];
       Error (`Deadlock cycle)
     | Wait_graph.Wound victim ->
       (match abort t victim with
        | Ok () ->
          Obs.Counter.incr t.n_victims;
          Hashtbl.replace t.victims victim ();
          if Obs.Registry.tracing t.obs then
            Obs.point t.obs "txn.wound"
              [ ("txn", Json.Int txn_id); ("victim", Json.Int victim) ];
          take_lock t txn_id ~table ~key mode
        | Error _ ->
          (* A blocker we cannot roll back — not an active transaction,
             e.g. a stale transferred lock. Waiting is all that's left;
             never loop wounding an unkillable holder. *)
          Error (`Blocked owners)))

let log_op t txn op =
  let lsn =
    Log.append t.log ~txn:txn.id ~prev_lsn:txn.last_lsn (Log_record.Op op)
  in
  txn.last_lsn <- lsn;
  lsn

let resolve_table t name =
  match Catalog.find_opt t.catalog name with
  | Some table -> Ok table
  | None -> Error (`No_table name)

let ( let* ) r f = match r with Ok v -> f v | Error e -> Error e

(* Write operations check the degraded flag up front — before locks,
   so a refused writer holds nothing. Reads skip this check. *)
let check_space t = if t.disk_full then Error `Disk_full else Ok ()

let insert t ~txn:txn_id ~table:table_name row =
  let* () = check_space t in
  let* table = resolve_table t table_name in
  let key = Table.key_of_row table row in
  let* txn = check_access t txn_id ~key ~table:table_name in
  let* () = take_lock t txn_id ~table:table_name ~key Compat.X in
  if Table.mem table key then Error `Duplicate_key
  else begin
    let op = Log_record.Insert { table = table_name; row } in
    let lsn = log_op t txn op in
    (match Table.insert table ~lsn ~txn:txn_id row with
     | Ok () -> ()
     | Error `Duplicate_key -> assert false);
    Obs.Counter.incr t.n_ops;
    fire_post_op t ~txn:txn_id ~lsn op;
    fire_access t ~table:table_name ~key;
    Ok ()
  end

let update t ~txn:txn_id ~table:table_name ~key changes =
  let* () = check_space t in
  let* txn = check_access t txn_id ~key ~table:table_name in
  let* table = resolve_table t table_name in
  let key_positions = Schema.key_positions (Table.schema table) in
  if List.exists (fun (i, _) -> List.mem i key_positions) changes then
    Error `Key_update
  else
    let* () = take_lock t txn_id ~table:table_name ~key Compat.X in
    match Table.find table key with
    | None -> Error `Not_found
    | Some record ->
      let before =
        List.map (fun (i, _) -> (i, Row.get record.Record.row i)) changes
      in
      let op = Log_record.Update { table = table_name; key; changes; before } in
      let lsn = log_op t txn op in
      (match Table.update table ~lsn ~txn:txn_id ~key changes with
       | Ok _ -> ()
       | Error `Not_found -> assert false);
      Obs.Counter.incr t.n_ops;
      fire_post_op t ~txn:txn_id ~lsn op;
      fire_access t ~table:table_name ~key;
      Ok ()

let delete t ~txn:txn_id ~table:table_name ~key =
  let* () = check_space t in
  let* txn = check_access t txn_id ~key ~table:table_name in
  let* table = resolve_table t table_name in
  let* () = take_lock t txn_id ~table:table_name ~key Compat.X in
  match Table.find table key with
  | None -> Error `Not_found
  | Some record ->
    let op =
      Log_record.Delete { table = table_name; key; before = record.Record.row }
    in
    let lsn = log_op t txn op in
    (match Table.delete table ~lsn ~txn:txn_id key with
     | Ok _ -> ()
     | Error `Not_found -> assert false);
    Obs.Counter.incr t.n_ops;
    fire_post_op t ~txn:txn_id ~lsn op;
    fire_access t ~table:table_name ~key;
    Ok ()

let read t ~txn:txn_id ~table:table_name ~key =
  match find_txn t txn_id with
  | Some ({ snapshot = Some at; _ } as txn) when txn.txn_status = Active ->
    (* Snapshot read: resolve the visible version without any lock and
       without the latch/freeze pre-flight - a sync phase blocking
       lock-based readers is a non-event here. *)
    if txn.abort_only then Error `Abort_only
    else
      let* table = resolve_table t table_name in
      let row = resolve_visible t ~self:txn_id ~at table key in
      fire_access t ~table:table_name ~key;
      Ok row
  | Some _ | None ->
    let* _txn = check_access t txn_id ~key ~table:table_name in
    let* table = resolve_table t table_name in
    let* () = take_lock t txn_id ~table:table_name ~key Compat.S in
    fire_access t ~table:table_name ~key;
    (match Table.find table key with
     | None -> Ok None
     | Some record -> Ok (Some record.Record.row))

let read_dirty t ~table:table_name ~key =
  match Catalog.find_opt t.catalog table_name with
  | None -> None
  | Some table ->
    (match Table.find table key with
     | None -> None
     | Some record -> Some record.Record.row)

let commit t txn_id =
  match find_txn t txn_id with
  | None -> Error `Txn_not_active
  | Some txn ->
    if txn.txn_status <> Active then Error `Txn_not_active
    else if txn.abort_only then Error `Abort_only
    else if t.disk_full then
      (* An ack is a durability promise (modulo the group-commit
         window); a full disk cannot keep it. The transaction stays
         active — the caller may retry once space returns, or abort
         (aborts proceed: rollback is in-memory and its records ride
         the buffered suffix). *)
      Error `Disk_full
    else begin
      let lsn =
        Log.append t.log ~txn:txn_id ~prev_lsn:txn.last_lsn Log_record.Commit
      in
      txn.last_lsn <- lsn;
      finish t txn Committed;
      t.pending_syncs <- t.pending_syncs + 1;
      if t.pending_syncs >= t.group_window then flush_commits t;
      Obs.Counter.incr t.n_commits;
      if Obs.Registry.tracing t.obs then
        Obs.point t.obs "txn.commit" [ ("txn", Json.Int txn_id) ];
      Ok ()
    end

module Stats = struct
  type counters = {
    ops : int;
    commits : int;
    aborts : int;
    blocked : int;
    deadlocks : int;
    victims : int;
    lock_waits : int;
  }

  let get t =
    { ops = Obs.Counter.value t.n_ops;
      commits = Obs.Counter.value t.n_commits;
      aborts = Obs.Counter.value t.n_aborts;
      blocked = Obs.Counter.value t.n_blocked;
      deadlocks = Obs.Counter.value t.n_deadlocks;
      victims = Obs.Counter.value t.n_victims;
      lock_waits = (Wait_graph.stats t.wait_graph).Wait_graph.waits }
end

let pp_error ppf = function
  | `Blocked owners ->
    Format.fprintf ppf "blocked by [%s]"
      (String.concat "; " (List.map string_of_int owners))
  | `Deadlock cycle ->
    Format.fprintf ppf "deadlock victim (cycle [%s])"
      (String.concat "; " (List.map string_of_int cycle))
  | `Latched table -> Format.fprintf ppf "table %S latched" table
  | `Frozen table -> Format.fprintf ppf "table %S frozen" table
  | `Duplicate_key -> Format.pp_print_string ppf "duplicate key"
  | `Not_found -> Format.pp_print_string ppf "record not found"
  | `No_table table -> Format.fprintf ppf "no such table %S" table
  | `Txn_not_active -> Format.pp_print_string ppf "transaction not active"
  | `Abort_only -> Format.pp_print_string ppf "transaction must abort"
  | `Key_update -> Format.pp_print_string ppf "primary key update"
  | `Disk_full ->
    Format.pp_print_string ppf "disk full: writes refused until space returns"
