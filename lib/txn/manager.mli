(** The transaction manager.

    Strict two-phase locking over {!Nbsc_lock.Lock_table}, write-ahead
    logging of every operation with redo+undo information, rollback via
    compensating log records (CLRs) per ARIES — the substrate the paper
    assumes (Sec. 1). The manager is cooperative: a conflicting lock
    makes an operation return [`Blocked] instead of sleeping; callers
    (tests, the simulator) decide whether to retry or abort. Deadlock
    handling is the engine's, not the caller's: every block is
    registered in a waits-for graph ({!Nbsc_lock.Wait_graph}) covering
    the {e whole} atomic multi-resource request (base lock plus all
    extra-lock-hook requests — so Fig. 2 two-schema cycles are seen),
    and the configured victim policy ({!set_contention}) either lets
    the wait stand ([`Blocked]), sentences the requester ([`Deadlock],
    the transaction turns abort-only), or wounds another transaction —
    which the manager rolls back on the spot via the CLR machinery
    before retrying the request. Per-resource FIFO wait queues
    additionally refuse barging (a request conflicting with an earlier
    live waiter's pending lock blocks behind it), which keeps hot-spot
    retries from starving the longest waiter.

    Three hooks exist solely for the synchronization strategies:
    - {!mark_abort_only} — non-blocking abort forces transactions that
      were active on the source tables to roll back;
    - {!add_extra_lock_hook} — non-blocking commit requires each lock
      on a source record to also be taken on the implicated records of
      the transformed table and vice versa (Sec. 4.3);
    - {!freeze_tables} — blocking-commit synchronization refuses table
      access to transactions begun after the freeze point.

    Hooks and freezes compose: each in-flight transformation registers
    its own lock hook under a distinct id and freezes only its own
    source tables, so several schema changes can synchronize
    independently. *)

open Nbsc_value
open Nbsc_wal
open Nbsc_lock
open Nbsc_storage

type t

type txn_id = Log_record.txn_id

type status = Active | Committed | Aborted

type error =
  [ `Blocked of txn_id list   (** conflicting lock owners *)
  | `Deadlock of txn_id list
      (** this transaction was chosen as deadlock victim (payload: the
          cycle, or the blockers under wait-die); it is now abort-only
          — roll it back and retry from the top *)
  | `Latched of string        (** table latched by the transformation *)
  | `Frozen of string         (** table frozen for new transactions *)
  | `Duplicate_key
  | `Not_found
  | `No_table of string
  | `Txn_not_active
  | `Abort_only               (** transaction must roll back *)
  | `Key_update               (** update touches a primary-key column *)
  | `Disk_full ]
      (** the engine is degraded: a durable append hit [ENOSPC].
          Writes and commits are refused; reads and aborts proceed.
          Clears automatically once an append succeeds
          ({!clear_disk_full}, driven by the persist sink). *)

val create : ?log:Log.t -> ?obs:Nbsc_obs.Obs.Registry.t -> Catalog.t -> t
(** All manager counters ([txn.ops], [txn.commits], [txn.aborts],
    [txn.blocked], [txn.deadlocks], [txn.victims], the [txn.active],
    [wal.records], [wal.segments] and [wal.truncated_total] probes, the
    [storage.versions_live] probe and [storage.versions_reclaimed]
    counter, the [wal.low_water] gauge, and the wait graph's [lock.*]
    set) register
    in [obs] when given, or in a private registry otherwise. With a trace sink
    attached, the manager also emits [lock.wait], [txn.deadlock],
    [txn.wound], [txn.commit] and [txn.abort] points. *)

val obs : t -> Nbsc_obs.Obs.Registry.t
(** The registry the manager's instruments live in. *)

val log : t -> Log.t
val locks : t -> Lock_table.t
val latches : t -> Latch.t
val catalog : t -> Catalog.t

val wait_graph : t -> Wait_graph.t
(** The engine's waits-for graph and wait queues (stats, tests). *)

val set_contention :
  ?policy:Wait_graph.policy -> ?fairness:bool -> t -> unit
(** Tune deadlock handling: victim [policy] (default
    {!Wait_graph.Youngest_in_cycle} — pure detection, no aborts unless
    an actual cycle forms) and queue [fairness] (default [true]; set
    [false] to restore first-come-retry barging). *)

val is_victim : t -> txn_id -> bool
(** Whether this transaction was ever sentenced by deadlock handling —
    either told [`Deadlock] directly or wounded while holding a lock
    another transaction deadlocked on. Lets clients distinguish "my
    transaction died under me" from ordinary failures. *)

type isolation = [ `Read_committed | `Snapshot ]

val begin_txn : ?isolation:isolation -> t -> txn_id
(** Ids are strictly increasing — age for wait-die. Under [`Snapshot]
    (default [`Read_committed]) the transaction's reads resolve against
    the MVCC version chains as of its Begin LSN: no S locks, and
    latches/freezes — the blocking edges of every synchronization
    strategy — do not apply to its reads. Its writes still go through
    ordinary 2PL. *)

val bump_txn_ids : t -> above:txn_id -> unit
(** Ensure future ids are strictly greater than [above]. A database
    reopened over a retained log suffix must not hand out ids that
    collide with the previous incarnation's transactions (recovery and
    the resumed propagators group log records by id). *)

val status : t -> txn_id -> status
val is_active : t -> txn_id -> bool

val active_snapshot : t -> (txn_id * Lsn.t) list
(** Active transactions with the LSN of their first log record — the
    payload of a fuzzy mark (paper, Sec. 3.2). *)

val active_count : t -> int

(** {2 WAL retention}

    The in-memory log is kept bounded by truncating everything no one
    can still reach. Three constituencies hold references into the log:
    active transactions (rollback walks the undo chain back to the
    transaction's first LSN), long-lived cursors (a propagator catching
    a new table up from the recovery log — these must register via
    {!pin_wal}), and crash recovery (the suffix above the last durable
    checkpoint, {!set_durable_floor}). {!wal_low_water} is the minimum
    over all three; {!truncate_wal} cuts the log there. The manager
    re-checks automatically on the commit/abort path every few thousand
    live records, and {!Nbsc_engine.Persist} calls {!truncate_wal}
    after each checkpoint. An unregistered cursor gets no protection:
    its next access below the cut raises {!Log.Truncated}. *)

type pin

val pin_wal : t -> (unit -> Lsn.t) -> pin
(** Register a position callback (typically [Log.Cursor.position] of a
    live cursor). Records at or above the reported LSN survive
    truncation for as long as the pin is registered. *)

val unpin_wal : t -> pin -> unit
(** Drop a pin (idempotent). *)

val set_durable_floor : t -> Lsn.t -> unit
(** Records at or below [lsn] are durable on disk (snapshot +
    checkpoint) and not needed for crash recovery. Without a durable
    floor the log is treated as expendable history: an in-memory
    database keeps only what actives and pins require. *)

val wal_low_water : t -> Lsn.t
(** The first LSN that must be retained; [Lsn.next (Log.head log)]
    when nothing constrains truncation. *)

val truncate_wal : t -> Lsn.t
(** Truncate the log to {!wal_low_water} (freeing whole segments),
    update the [wal.low_water] gauge, run {!gc_versions}, and return
    the mark. *)

(** {2 MVCC} *)

val track_table : t -> Table.t -> unit
(** Wire the table's version-retention hint ({!Table.set_retain_hint})
    to this manager's "any snapshot transaction active?" state, so
    system overwrites on it skip version pushes while no snapshot
    could resolve them. [create] wires every table already in the
    catalog; the engine facade calls this for tables created later. *)

val oldest_snapshot : t -> Lsn.t option
(** The lowest snapshot LSN among active [`Snapshot] transactions. *)

val classify_version : t -> txn:int -> lsn:Lsn.t ->
  [ `At of Lsn.t | `Dead | `Live ]
(** Resolve a version stamp: [`At commit_lsn] for committed state
    (stamp 0 — system writes — commits at its own [lsn]), [`Live] for
    a still-active writer, [`Dead] for aborted or unknown writers. *)

val gc_versions : t -> int
(** Reclaim version-chain entries no active snapshot can reach, from
    every table in the catalog. The horizon is
    [min (oldest_snapshot, wal_low_water)] — chains stay resolvable at
    least as far back as the retained WAL. Returns the number of
    entries reclaimed (also accumulated in the
    [storage.versions_reclaimed] counter; live entries are visible via
    the [storage.versions_live] probe). Runs automatically with every
    {!truncate_wal}. *)

val insert : t -> txn:txn_id -> table:string -> Row.t -> (unit, error) result
val update : t -> txn:txn_id -> table:string -> key:Row.Key.t ->
  (int * Value.t) list -> (unit, error) result
val delete : t -> txn:txn_id -> table:string -> key:Row.Key.t ->
  (unit, error) result
val read : t -> txn:txn_id -> table:string -> key:Row.Key.t ->
  (Row.t option, error) result
(** Takes an S lock; [Ok None] if no record has this key. For a
    [`Snapshot] transaction: lock-free, resolves the committed version
    visible at the transaction's snapshot LSN (own writes included). *)

val read_dirty : t -> table:string -> key:Row.Key.t -> Row.t option
(** Lock-free read, for fuzzy scans and the consistency checker. *)

val commit : t -> txn_id -> (unit, error) result
val abort : t -> txn_id -> (unit, error) result
(** Rolls back by walking the undo chain, emitting CLRs; releases
    locks; writes Abort_begin / Abort_done. *)

(** {2 Group commit}

    The persist sink buffers encoded records; {!Log.sync} is the
    durability barrier that flushes them. [commit] raises the barrier
    once every [window] commits, so a batch shares one write+flush
    (and one low-water/truncation re-check) instead of paying one per
    record. The default window of 1 syncs at every commit — each ack
    implies durability, the classical contract. A larger window trades
    the durability of the last < window acked commits on a crash for
    throughput; recovery semantics are otherwise unchanged (the
    on-disk log is always a prefix of the in-memory log, and a lost
    suffix only ever holds records of unsynced transactions). *)

(** {2 Degraded mode: disk full}

    Set by the persist sink when a physical WAL append fails with
    [ENOSPC]; cleared by it when an append succeeds again. While the
    flag is up, {!insert}/{!update}/{!delete}/{!commit} return
    [`Disk_full] (before taking any lock) and the transformation
    executor pauses its quanta; {!read}, {!read_dirty} and {!abort}
    proceed — rollback only needs the in-memory log. *)

val set_disk_full : t -> unit
val clear_disk_full : t -> unit
val disk_full : t -> bool

val set_group_commit : t -> int -> unit
(** Set the batch window (>= 1). Shrinking it below the pending count
    flushes immediately. *)

val group_commit_window : t -> int

val flush_commits : t -> unit
(** Force the durability barrier now, regardless of the window — the
    explicit drain for quiesce points (shutdown, checkpoint, end of a
    bench phase). Observes the [engine.commit_batch_size] histogram. *)

val synced_commits : t -> int
(** Number of acknowledged commits known to be durable: total commits
    minus those still waiting for the group barrier. Commits become
    durable in commit order, so every commit whose ordinal is at or
    below this count survives a crash; the ones above it are the
    legal < window loss. *)

val mark_abort_only : t -> txn_id -> unit
val is_abort_only : t -> txn_id -> bool

val add_extra_lock_hook :
  t ->
  id:int ->
  (txn:txn_id -> table:string -> key:Row.Key.t -> mode:Compat.mode ->
   Lock_table_many.request list) ->
  unit
(** Register a lock hook under [id] (replacing any hook with the same
    id). Every record lock an operation takes is extended with the
    extra requests of all registered hooks; the whole set is acquired
    atomically or the operation blocks. *)

val remove_extra_lock_hook : t -> id:int -> unit

val freeze_tables : t -> string list -> unit
(** Transactions begun after this call get [`Frozen] on these tables;
    already-running ones proceed. Additive: freezes from several
    callers coexist; lift a freeze with {!unfreeze_tables}. *)

val unfreeze_tables : t -> string list -> unit
(** Lift the freeze on exactly these tables. *)

val add_post_op_hook :
  t -> id:int -> (txn:txn_id -> lsn:Lsn.t -> Log_record.op -> unit) -> unit
(** Register a post-op hook under [id] (replacing any hook with the
    same id). Hooks are called synchronously after every successful
    write operation — including the compensating inverses applied
    during rollback — the trigger mechanism of the Ronström-style
    comparator and the shadow-table audit log (the extra work runs
    inside the user transaction, which is exactly the overhead the
    paper's log-based method avoids). Several consumers may register
    concurrently; each removes only its own id. *)

val remove_post_op_hook : t -> id:int -> unit

val set_post_op_hook :
  t -> (txn:txn_id -> lsn:Lsn.t -> Log_record.op -> unit) option -> unit
(** Legacy single-slot interface: [Some h] registers [h] under a
    reserved id, [None] removes it. Prefer {!add_post_op_hook} /
    {!remove_post_op_hook}. *)

val add_access_hook :
  t -> id:int -> (table:string -> key:Row.Key.t -> unit) -> unit
(** Register an access hook under [id] (replacing any hook with the
    same id). Called synchronously after every {e successful} keyed
    operation — reads included — with the table and key touched. The
    lazy-migration machinery uses this to migrate records on first
    access under the new schema. *)

val remove_access_hook : t -> id:int -> unit

(** Operation counts, for metrics. *)
module Stats : sig
  type counters = {
    ops : int;
    commits : int;
    aborts : int;
    blocked : int;
    deadlocks : int;   (** requests sentenced with [`Deadlock] *)
    victims : int;     (** transactions wounded (rolled back) for others *)
    lock_waits : int;  (** block events registered in the wait graph *)
  }

  val get : t -> counters
end

val pp_error : Format.formatter -> error -> unit
